#include "ivr/sim/simulator.h"

#include <gtest/gtest.h>

#include "ivr/sim/policy.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 51;
    options.num_topics = 4;
    options.num_videos = 10;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    backend_ = std::make_unique<StaticBackend>(*engine_);
    simulator_ = std::make_unique<SessionSimulator>(generated_->collection,
                                                    generated_->qrels);
  }

  SimulatedSession RunOnce(Environment env, uint64_t seed,
                           SessionLog* log = nullptr) {
    SessionSimulator::RunConfig config;
    config.environment = env;
    config.session_id = "sess-" + std::to_string(seed);
    config.user_id = "user";
    config.seed = seed;
    return simulator_
        ->Run(backend_.get(), generated_->topics.topics[0], NoviceUser(),
              config, log)
        .value();
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<StaticBackend> backend_;
  std::unique_ptr<SessionSimulator> simulator_;
};

TEST_F(SimulatorTest, SessionProducesEventsAndOutcome) {
  const SimulatedSession session = RunOnce(Environment::kDesktop, 1);
  EXPECT_GT(session.outcome.queries_issued, 0u);
  EXPECT_GT(session.outcome.shots_examined, 0u);
  EXPECT_FALSE(session.events.empty());
  EXPECT_EQ(session.events.back().type, EventType::kSessionEnd);
  EXPECT_GT(session.outcome.session_ms, 0);
  EXPECT_EQ(session.outcome.per_query_results.size(),
            session.outcome.queries_issued);
}

TEST_F(SimulatorTest, DeterministicInSeed) {
  const SimulatedSession a = RunOnce(Environment::kDesktop, 7);
  const SimulatedSession b = RunOnce(Environment::kDesktop, 7);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].type, b.events[i].type);
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].shot, b.events[i].shot);
  }
  const SimulatedSession c = RunOnce(Environment::kDesktop, 8);
  EXPECT_NE(a.events.size(), c.events.size());
}

TEST_F(SimulatorTest, EventsAppendedToSharedLog) {
  SessionLog log;
  RunOnce(Environment::kDesktop, 1, &log);
  RunOnce(Environment::kTv, 2, &log);
  EXPECT_EQ(log.SessionIds().size(), 2u);
  EXPECT_GE(log.CountType(EventType::kSessionEnd), 2u);
}

TEST_F(SimulatorTest, SimulatedUserFindsRelevantShots) {
  size_t found = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    found += RunOnce(Environment::kDesktop, seed)
                 .outcome.truly_relevant_found;
  }
  EXPECT_GT(found, 0u);
}

TEST_F(SimulatorTest, TvSessionsEmitNoTooltipOrMetadataEvents) {
  SessionLog log;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SessionSimulator::RunConfig config;
    config.environment = Environment::kTv;
    config.session_id = "tv-" + std::to_string(seed);
    config.seed = seed;
    simulator_
        ->Run(backend_.get(), generated_->topics.topics[0],
              CouchViewerUser(), config, &log)
        .value();
  }
  EXPECT_EQ(log.CountType(EventType::kTooltipHover), 0u);
  EXPECT_EQ(log.CountType(EventType::kHighlightMetadata), 0u);
}

TEST_F(SimulatorTest, CouchViewerJudgesMoreExplicitly) {
  size_t tv_marks = 0;
  size_t desktop_marks = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SessionSimulator::RunConfig config;
    config.seed = seed;
    config.environment = Environment::kTv;
    config.session_id = "tv";
    tv_marks += simulator_
                    ->Run(backend_.get(), generated_->topics.topics[0],
                          CouchViewerUser(), config, nullptr)
                    .value()
                    .outcome.explicit_judgments;
    config.environment = Environment::kDesktop;
    config.session_id = "pc";
    desktop_marks += simulator_
                         ->Run(backend_.get(),
                               generated_->topics.topics[0],
                               NoviceUser(), config, nullptr)
                         .value()
                         .outcome.explicit_judgments;
  }
  EXPECT_GT(tv_marks, desktop_marks);
}

TEST_F(SimulatorTest, StartTimeShiftsEventTimestamps) {
  SessionSimulator::RunConfig config;
  config.seed = 3;
  config.start_time = 1000000;
  config.session_id = "late";
  const SimulatedSession session =
      simulator_
          ->Run(backend_.get(), generated_->topics.topics[0],
                NoviceUser(), config, nullptr)
          .value();
  for (const InteractionEvent& ev : session.events) {
    EXPECT_GE(ev.time, 1000000);
  }
}

TEST(EnvironmentTest, Names) {
  EXPECT_EQ(EnvironmentName(Environment::kDesktop), "desktop");
  EXPECT_EQ(EnvironmentName(Environment::kTv), "tv");
}

TEST(PolicyTest, FormulateQueryUsesTitleThenDescription) {
  GeneratorOptions options;
  options.seed = 51;
  options.num_topics = 3;
  options.num_videos = 4;
  const GeneratedCollection g = GenerateCollection(options).value();
  const BehaviorPolicy policy(ExpertUser(), g.topics.topics[0], g.qrels,
                              1);
  const std::string first = policy.FormulateQuery(0);
  EXPECT_FALSE(first.empty());
  // First query is a prefix of the topic title.
  EXPECT_EQ(g.topics.topics[0].title.find(first.substr(0, 4)), 0u);
  // Reformulations differ from the original.
  EXPECT_NE(policy.FormulateQuery(1), first);
}

}  // namespace
}  // namespace ivr
