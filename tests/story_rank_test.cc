#include "ivr/retrieval/story_rank.h"

#include <gtest/gtest.h>

#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class StoryRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 121;
    options.num_topics = 3;
    options.num_videos = 4;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
  }

  // A shot list touching two stories with controlled scores.
  ResultList TwoStoryList(double* max_a, double* sum_a) const {
    const NewsStory& a = generated_->collection.stories()[0];
    const NewsStory& b = generated_->collection.stories()[1];
    ResultList list;
    double score = 1.0;
    *max_a = 0.0;
    *sum_a = 0.0;
    for (ShotId shot : a.shots) {
      list.Add(shot, score);
      *max_a = std::max(*max_a, score);
      *sum_a += score;
      score -= 0.1;
    }
    list.Add(b.shots[0], 2.0);  // story b: single strong shot
    return list;
  }

  std::unique_ptr<GeneratedCollection> generated_;
};

TEST_F(StoryRankTest, EmptyInput) {
  EXPECT_TRUE(RankStories(ResultList(), generated_->collection, 10)
                  .empty());
}

TEST_F(StoryRankTest, MaxAggregationFavoursBestShot) {
  double max_a = 0.0;
  double sum_a = 0.0;
  const ResultList list = TwoStoryList(&max_a, &sum_a);
  const auto ranked = RankStories(list, generated_->collection, 10,
                                  StoryAggregation::kMax);
  ASSERT_EQ(ranked.size(), 2u);
  // Story b has the single best shot (2.0 > max_a).
  EXPECT_EQ(ranked[0].story, 1u);
  EXPECT_DOUBLE_EQ(ranked[0].score, 2.0);
  EXPECT_DOUBLE_EQ(ranked[1].score, max_a);
}

TEST_F(StoryRankTest, SumAggregationFavoursBroadSupport) {
  double max_a = 0.0;
  double sum_a = 0.0;
  const ResultList list = TwoStoryList(&max_a, &sum_a);
  if (sum_a <= 2.0) GTEST_SKIP() << "story 0 too short for this check";
  const auto ranked = RankStories(list, generated_->collection, 10,
                                  StoryAggregation::kSum);
  EXPECT_EQ(ranked[0].story, 0u);
  EXPECT_DOUBLE_EQ(ranked[0].score, sum_a);
}

TEST_F(StoryRankTest, MeanAggregationNormalizesByRetrievedShots) {
  double max_a = 0.0;
  double sum_a = 0.0;
  const ResultList list = TwoStoryList(&max_a, &sum_a);
  const auto ranked = RankStories(list, generated_->collection, 10,
                                  StoryAggregation::kMean);
  const size_t count_a =
      generated_->collection.stories()[0].shots.size();
  for (const RankedStory& r : ranked) {
    if (r.story == 0u) {
      EXPECT_NEAR(r.score, sum_a / static_cast<double>(count_a), 1e-12);
    }
  }
}

TEST_F(StoryRankTest, SupportingShotsSortedBestFirst) {
  double max_a = 0.0;
  double sum_a = 0.0;
  const ResultList list = TwoStoryList(&max_a, &sum_a);
  const auto ranked = RankStories(list, generated_->collection, 10);
  for (const RankedStory& story : ranked) {
    ASSERT_FALSE(story.supporting_shots.empty());
    double previous = 1e18;
    for (ShotId shot : story.supporting_shots) {
      const double score = list.ScoreOf(shot);
      EXPECT_LE(score, previous);
      previous = score;
      EXPECT_EQ(generated_->collection.shot(shot).value()->story,
                story.story);
    }
  }
}

TEST_F(StoryRankTest, KTruncates) {
  double max_a = 0.0;
  double sum_a = 0.0;
  const ResultList list = TwoStoryList(&max_a, &sum_a);
  EXPECT_EQ(RankStories(list, generated_->collection, 1).size(), 1u);
}

TEST_F(StoryRankTest, UnknownShotsIgnored) {
  ResultList list;
  list.Add(9999999, 5.0);
  EXPECT_TRUE(RankStories(list, generated_->collection, 10).empty());
}

TEST_F(StoryRankTest, TopicalQueryRanksTopicalStoriesFirst) {
  auto engine = RetrievalEngine::Build(generated_->collection).value();
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;
  const auto stories = RankStories(engine->Search(query, 500),
                                   generated_->collection, 5);
  ASSERT_FALSE(stories.empty());
  size_t on_topic = 0;
  for (const RankedStory& s : stories) {
    if (generated_->collection.story(s.story).value()->topic ==
        topic.target_topic) {
      ++on_topic;
    }
  }
  EXPECT_GE(on_topic, stories.size() / 2);
}

}  // namespace
}  // namespace ivr
