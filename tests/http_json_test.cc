#include "ivr/net/json.h"

#include <gtest/gtest.h>

#include <string>

#include "ivr/core/string_util.h"

namespace ivr {
namespace net {
namespace {

JsonValue MustParse(const std::string& text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").bool_value());
  EXPECT_FALSE(MustParse("false").bool_value());
  EXPECT_DOUBLE_EQ(MustParse("42").number_value(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-3.5").number_value(), -3.5);
  EXPECT_DOUBLE_EQ(MustParse("2.5e3").number_value(), 2500.0);
  EXPECT_EQ(MustParse("\"hi\"").string_value(), "hi");
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const JsonValue v = MustParse("  { \"a\" : [ 1 , 2 ] }\n");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.Find("a"), nullptr);
  EXPECT_EQ(v.Find("a")->items().size(), 2u);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(MustParse("\"a\\\"b\\\\c\"").string_value(), "a\"b\\c");
  EXPECT_EQ(MustParse("\"x\\n\\t\\r\"").string_value(), "x\n\t\r");
  EXPECT_EQ(MustParse("\"\\u0041\"").string_value(), "A");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(MustParse("\"\\uD83D\\uDE00\"").string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, ObjectsPreserveMemberOrder) {
  const JsonValue v = MustParse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParseTest, NestedStructures) {
  const JsonValue v = MustParse(
      "{\"query\": {\"text\": \"cats\", \"concepts\": [1, 2, 3]}, "
      "\"k\": 10}");
  const JsonValue* query = v.Find("query");
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->GetString("text").value(), "cats");
  EXPECT_EQ(query->Find("concepts")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.GetNumber("k").value(), 10.0);
}

TEST(JsonParseTest, SyntaxErrorsAreInvalidArgument) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "01", "+1", ".5", "1.",
        "\"unterminated", "\"bad \\q escape\"", "{\"a\":1} extra",
        "'single'", "{\"a\":}", "[1,]", "\"\\uD83D\"", "nan"}) {
    const Result<JsonValue> parsed = JsonValue::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << bad;
  }
}

TEST(JsonParseTest, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::Parse(deep, 32).ok());
  EXPECT_TRUE(JsonValue::Parse(deep, 65).ok());
}

TEST(JsonParseTest, CheckedGettersNameTheKey) {
  const JsonValue v = MustParse("{\"a\": 1}");
  const Result<std::string> missing = v.GetString("session_id");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("session_id"),
            std::string::npos);
  const Result<std::string> mistyped = v.GetString("a");
  ASSERT_FALSE(mistyped.ok());
  EXPECT_DOUBLE_EQ(v.GetNumberOr("a", 7).value(), 1.0);
  EXPECT_DOUBLE_EQ(v.GetNumberOr("b", 7).value(), 7.0);
  EXPECT_EQ(v.GetStringOr("b", "dft").value(), "dft");
}

TEST(JsonParseTest, JsonQuoteRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te\x01 caf\xc3\xa9";
  const JsonValue v = MustParse(JsonQuote(nasty));
  EXPECT_EQ(v.string_value(), nasty);
}

TEST(JsonParseTest, SeventeenSigFigDoublesRoundTripExactly) {
  // The bit-equality contract of /v1/search: %.17g -> JSON -> double is
  // the identity on IEEE doubles.
  for (double value : {2.9194597556230764, 1.0 / 3.0, 1e-300, 6.02e23,
                       -0.0078125, 3.5000000000000004}) {
    const std::string wire = StrFormat("%.17g", value);
    const JsonValue parsed = MustParse(wire);
    EXPECT_EQ(parsed.number_value(), value) << wire;
    EXPECT_EQ(StrFormat("%.17g", parsed.number_value()), wire);
  }
}

}  // namespace
}  // namespace net
}  // namespace ivr
