#include "ivr/eval/session_metrics.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

InteractionEvent MakeEvent(TimeMs time, EventType type,
                           ShotId shot = kInvalidShotId) {
  InteractionEvent ev;
  ev.time = time;
  ev.type = type;
  ev.shot = shot;
  ev.topic = 1;
  return ev;
}

Qrels MakeQrels() {
  Qrels qrels;
  qrels.Set(1, 10, 2);
  qrels.Set(1, 11, 1);
  return qrels;
}

TEST(SessionEffortTest, EmptySession) {
  const SessionEffortMetrics m = ComputeSessionEffort({}, MakeQrels(), 1);
  EXPECT_EQ(m.total_actions, 0u);
  EXPECT_EQ(m.time_to_first_relevant_ms, -1);
  EXPECT_DOUBLE_EQ(m.RelevantPerMinute(), 0.0);
  EXPECT_DOUBLE_EQ(m.PlayPrecision(), 0.0);
}

TEST(SessionEffortTest, CountsActionsNotDisplays) {
  const std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kQuerySubmit),
      MakeEvent(1, EventType::kResultDisplayed, 10),
      MakeEvent(2, EventType::kResultDisplayed, 11),
      MakeEvent(3, EventType::kClickKeyframe, 10),
      MakeEvent(4, EventType::kSessionEnd),
  };
  const SessionEffortMetrics m =
      ComputeSessionEffort(events, MakeQrels(), 1);
  EXPECT_EQ(m.total_actions, 2u);  // query + click
}

TEST(SessionEffortTest, FirstRelevantPlayStopsTheClock) {
  const std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kQuerySubmit),
      MakeEvent(1000, EventType::kClickKeyframe, 99),   // non-relevant
      MakeEvent(2000, EventType::kPlayStart, 99),
      MakeEvent(3000, EventType::kClickKeyframe, 10),   // relevant
      MakeEvent(4000, EventType::kPlayStart, 10),
      MakeEvent(5000, EventType::kClickKeyframe, 11),
      MakeEvent(6000, EventType::kSessionEnd),
  };
  const SessionEffortMetrics m =
      ComputeSessionEffort(events, MakeQrels(), 1);
  // Actions before (and including) the relevant play: query, click99,
  // play99, click10, play10.
  EXPECT_EQ(m.actions_to_first_relevant, 5u);
  EXPECT_EQ(m.time_to_first_relevant_ms, 4000);
  EXPECT_EQ(m.total_actions, 6u);
  EXPECT_EQ(m.relevant_played, 1u);
  EXPECT_EQ(m.nonrelevant_played, 1u);
  EXPECT_DOUBLE_EQ(m.PlayPrecision(), 0.5);
  EXPECT_EQ(m.session_ms, 6000);
}

TEST(SessionEffortTest, NoRelevantFound) {
  const std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kQuerySubmit),
      MakeEvent(1000, EventType::kPlayStart, 99),
      MakeEvent(2000, EventType::kSessionEnd),
  };
  const SessionEffortMetrics m =
      ComputeSessionEffort(events, MakeQrels(), 1);
  EXPECT_EQ(m.time_to_first_relevant_ms, -1);
  EXPECT_EQ(m.actions_to_first_relevant, m.total_actions);
  EXPECT_EQ(m.relevant_played, 0u);
}

TEST(SessionEffortTest, RepeatedPlaysCountedOnce) {
  const std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kPlayStart, 10),
      MakeEvent(1000, EventType::kPlayStart, 10),
      MakeEvent(60000, EventType::kSessionEnd),
  };
  const SessionEffortMetrics m =
      ComputeSessionEffort(events, MakeQrels(), 1);
  EXPECT_EQ(m.relevant_played, 1u);
  EXPECT_NEAR(m.RelevantPerMinute(), 1.0, 1e-9);
}

TEST(SessionEffortTest, UnsortedEventsHandled) {
  const std::vector<InteractionEvent> events = {
      MakeEvent(4000, EventType::kPlayStart, 10),
      MakeEvent(0, EventType::kQuerySubmit),
  };
  const SessionEffortMetrics m =
      ComputeSessionEffort(events, MakeQrels(), 1);
  EXPECT_EQ(m.time_to_first_relevant_ms, 4000);
}

TEST(SessionEffortTest, MeanAggregates) {
  SessionEffortMetrics a;
  a.total_actions = 10;
  a.actions_to_first_relevant = 4;
  a.time_to_first_relevant_ms = 2000;
  a.relevant_played = 2;
  a.session_ms = 60000;
  SessionEffortMetrics b;
  b.total_actions = 20;
  b.actions_to_first_relevant = 20;
  b.time_to_first_relevant_ms = -1;  // found nothing
  b.relevant_played = 0;
  b.session_ms = 120000;
  const SessionEffortMetrics mean = MeanSessionEffort({a, b});
  EXPECT_EQ(mean.total_actions, 15u);
  EXPECT_EQ(mean.actions_to_first_relevant, 12u);
  EXPECT_EQ(mean.relevant_played, 1u);
  EXPECT_EQ(mean.session_ms, 90000);
  // time averages only over sessions that found something.
  EXPECT_EQ(mean.time_to_first_relevant_ms, 2000);
  EXPECT_EQ(MeanSessionEffort({}).total_actions, 0u);
}

}  // namespace
}  // namespace ivr
