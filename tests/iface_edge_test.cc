// Edge-case coverage for the interface state machine beyond the basic
// flows in interface_test.cc: clamping, capability gating, and the
// backend event-forwarding contract.

#include <gtest/gtest.h>

#include "ivr/iface/desktop.h"
#include "ivr/iface/tv.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

// Backend that counts the events it observes.
class CountingBackend : public SearchBackend {
 public:
  explicit CountingBackend(const RetrievalEngine& engine)
      : engine_(&engine) {}

  ResultList Search(const Query& query, size_t k) override {
    ++searches_;
    return engine_->Search(query, k);
  }
  void ObserveEvent(const InteractionEvent& event) override {
    events_.push_back(event);
  }
  void BeginSession() override { ++sessions_; }
  std::string name() const override { return "counting"; }

  const std::vector<InteractionEvent>& events() const { return events_; }
  size_t searches() const { return searches_; }
  size_t sessions() const { return sessions_; }

 private:
  const RetrievalEngine* engine_;
  std::vector<InteractionEvent> events_;
  size_t searches_ = 0;
  size_t sessions_ = 0;
};

class IfaceEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 131;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    backend_ = std::make_unique<CountingBackend>(*engine_);
  }

  std::unique_ptr<DesktopInterface> MakeDesktop() {
    SearchInterface::Config config;
    config.session_id = "edge";
    return std::make_unique<DesktopInterface>(
        backend_.get(), generated_->collection, config, &log_, &clock_);
  }

  std::string Title() const { return generated_->topics.topics[0].title; }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<CountingBackend> backend_;
  SessionLog log_;
  SimulatedClock clock_;
};

TEST_F(IfaceEdgeTest, NoResultsStateIsSafe) {
  auto iface = MakeDesktop();
  EXPECT_EQ(iface->NumPages(), 0u);
  EXPECT_TRUE(iface->VisibleShots().empty());
  EXPECT_FALSE(iface->IsVisible(0));
  EXPECT_EQ(iface->open_shot(), kInvalidShotId);
  EXPECT_TRUE(iface->ClickKeyframe(0).IsFailedPrecondition());
  EXPECT_TRUE(iface->HoverTooltip(0, 100).IsFailedPrecondition());
  EXPECT_TRUE(iface->MarkRelevance(0, true).IsFailedPrecondition());
  EXPECT_TRUE(iface->SubmitVisualExample(0).IsFailedPrecondition());
}

TEST_F(IfaceEdgeTest, UnmatchedQueryYieldsEmptyResults) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery("zzzunmatchablezzz").ok());
  EXPECT_TRUE(iface->HasResults());
  EXPECT_TRUE(iface->results().empty());
  EXPECT_EQ(iface->NumPages(), 0u);
  EXPECT_TRUE(iface->NextPage().IsOutOfRange());
}

TEST_F(IfaceEdgeTest, PlayFractionClampsToShotDuration) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ShotId shot = iface->VisibleShots()[0];
  ASSERT_TRUE(iface->ClickKeyframe(shot).ok());
  const TimeMs before = clock_.Now();
  ASSERT_TRUE(iface->Play(7.5).ok());  // clamped to 1.0
  const Shot* s = generated_->collection.shot(shot).value();
  EXPECT_EQ(clock_.Now() - before, s->duration_ms);
  // Negative fraction: zero-length playback still logs start/stop.
  const TimeMs mid = clock_.Now();
  ASSERT_TRUE(iface->Play(-3.0).ok());
  EXPECT_EQ(clock_.Now(), mid);
}

TEST_F(IfaceEdgeTest, SeekClampsToShotBounds) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ShotId shot = iface->VisibleShots()[0];
  ASSERT_TRUE(iface->ClickKeyframe(shot).ok());
  ASSERT_TRUE(iface->Seek(-500).ok());
  ASSERT_TRUE(iface->Seek(100000000).ok());
  const Shot* s = generated_->collection.shot(shot).value();
  double last_offset = -1.0;
  for (const InteractionEvent& ev : log_.events()) {
    if (ev.type == EventType::kSeek) last_offset = ev.value;
  }
  EXPECT_DOUBLE_EQ(last_offset, static_cast<double>(s->duration_ms));
}

TEST_F(IfaceEdgeTest, NegativeTooltipDurationClamped) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const TimeMs before = clock_.Now();
  ASSERT_TRUE(iface->HoverTooltip(iface->VisibleShots()[0], -999).ok());
  // Only the fixed hover cost is charged, never negative time.
  EXPECT_EQ(clock_.Now() - before,
            iface->costs().Cost(ActionKind::kHoverTooltip));
}

TEST_F(IfaceEdgeTest, EveryLoggedEventReachesTheBackend) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ShotId shot = iface->VisibleShots()[0];
  ASSERT_TRUE(iface->ClickKeyframe(shot).ok());
  ASSERT_TRUE(iface->Play(0.4).ok());
  ASSERT_TRUE(iface->EndSession().ok());
  ASSERT_EQ(backend_->events().size(), log_.size());
  for (size_t i = 0; i < log_.size(); ++i) {
    EXPECT_EQ(backend_->events()[i].type, log_.events()[i].type);
    EXPECT_EQ(backend_->events()[i].time, log_.events()[i].time);
  }
}

TEST_F(IfaceEdgeTest, RejectedActionsLogNothingAndCostNothing) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const size_t events_before = log_.size();
  const TimeMs time_before = clock_.Now();
  EXPECT_FALSE(iface->ClickKeyframe(999999).ok());
  EXPECT_FALSE(iface->Play(0.5).ok());  // nothing open
  EXPECT_FALSE(iface->PrevPage().ok());
  EXPECT_EQ(log_.size(), events_before);
  EXPECT_EQ(clock_.Now(), time_before);
}

TEST_F(IfaceEdgeTest, VisualExampleResetsPagination) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  if (iface->NumPages() > 1) {
    ASSERT_TRUE(iface->NextPage().ok());
    EXPECT_EQ(iface->page(), 1u);
  }
  const ShotId shot = iface->VisibleShots()[0];
  ASSERT_TRUE(iface->SubmitVisualExample(shot).ok());
  EXPECT_EQ(iface->page(), 0u);
  EXPECT_EQ(iface->open_shot(), kInvalidShotId);
  EXPECT_EQ(backend_->searches(), 2u);
}

TEST_F(IfaceEdgeTest, OpenShotStaysJudgeableAfterPaging) {
  // The playback panel keeps the opened shot actionable even when the
  // result page scrolls away underneath.
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ShotId shot = iface->VisibleShots()[0];
  ASSERT_TRUE(iface->ClickKeyframe(shot).ok());
  if (iface->NumPages() > 1) {
    ASSERT_TRUE(iface->NextPage().ok());
    EXPECT_FALSE(iface->IsVisible(shot));
    EXPECT_TRUE(iface->MarkRelevance(shot, true).ok());
    EXPECT_TRUE(iface->HighlightMetadata(shot).ok());
  }
}

}  // namespace
}  // namespace ivr
