#include "ivr/core/status.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::Corruption("f"), StatusCode::kCorruption},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented},
      {Status::IOError("h"), StatusCode::kIOError},
      {Status::Internal("i"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("missing doc").ToString(),
            "NotFound: missing doc");
  EXPECT_EQ(Status(StatusCode::kIOError, "").ToString(), "IOError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad"); };
  auto wrapper = [&]() -> Status {
    IVR_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(wrapper().IsCorruption());

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    IVR_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(wrapper2().IsInternal());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented),
            "Unimplemented");
}

}  // namespace
}  // namespace ivr
