// Concurrent-reader contract for ResultList: a list left unsorted by
// Add() may be read from many threads at once — the lazy sort resolves
// exactly once behind the mutex and every reader sees the same fully
// sorted ranking. This is the TSan workload for the EnsureSorted
// double-checked path; it also pins the eager-sort and copy/move
// semantics the result cache relies on.

#include "ivr/retrieval/result_list.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ivr/core/string_util.h"

namespace ivr {
namespace {

ResultList MakeUnsorted(size_t n) {
  // Built via Add() so the pending sort is still unresolved when the
  // readers start.
  ResultList list;
  for (size_t i = 0; i < n; ++i) {
    const ShotId shot = static_cast<ShotId>((i * 7919) % n);
    list.Add(shot, static_cast<double>((i * 104729) % 1000) / 1000.0);
  }
  return list;
}

std::string Fingerprint(const ResultList& list) {
  std::string out;
  for (const RankedShot& entry : list.items()) {
    out += StrFormat("%u:%.17g ", entry.shot, entry.score);
  }
  return out;
}

TEST(ResultListConcurrentTest, ManyReadersOnOneUnsortedListAgree) {
  constexpr size_t kThreads = 8;
  constexpr size_t kItems = 512;
  for (int iteration = 0; iteration < 20; ++iteration) {
    const ResultList list = MakeUnsorted(kItems);
    // Reference from a separately constructed, eagerly sorted list.
    ResultList eager = MakeUnsorted(kItems);
    const std::string expected = Fingerprint(ResultList(eager.items()));

    std::vector<std::string> seen(kThreads);
    std::atomic<size_t> start{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        // Rough start barrier so threads race into EnsureSorted together.
        start.fetch_add(1);
        while (start.load() < kThreads) {
        }
        // Mix of const accessors, all funnelling through EnsureSorted.
        const size_t n = list.size();
        EXPECT_EQ(n, list.ShotIds().size());
        EXPECT_TRUE(list.Contains(list.at(0).shot));
        EXPECT_EQ(list.RankOf(list.at(n - 1).shot), n - 1);
        seen[t] = Fingerprint(list);
      });
    }
    for (std::thread& t : pool) t.join();
    for (size_t t = 0; t < kThreads; ++t) {
      EXPECT_EQ(seen[t], expected) << "thread " << t;
    }
  }
}

TEST(ResultListConcurrentTest, VectorConstructionSortsEagerly) {
  const ResultList list(
      {{ShotId{5}, 0.2}, {ShotId{1}, 0.9}, {ShotId{3}, 0.9}});
  // Already ordered: score desc, ties by ascending shot.
  EXPECT_EQ(list.ShotIds(), (std::vector<ShotId>{1, 3, 5}));
}

TEST(ResultListConcurrentTest, DuplicateShotsKeepMaxScore) {
  ResultList list;
  list.Add(7, 0.25);
  list.Add(7, 0.75);
  list.Add(7, 0.50);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.ScoreOf(7), 0.75);
}

TEST(ResultListConcurrentTest, CopySharesNothingAndIsSorted) {
  ResultList original;
  original.Add(2, 0.1);
  original.Add(1, 0.9);
  const ResultList copy = original;  // copy resolves the pending sort
  EXPECT_EQ(copy.ShotIds(), (std::vector<ShotId>{1, 2}));
  original.Add(3, 0.5);
  EXPECT_EQ(copy.size(), 2u) << "copy must not alias the source";
  EXPECT_EQ(original.size(), 3u);
}

TEST(ResultListConcurrentTest, MoveLeavesSourceEmptyAndUsable) {
  ResultList source;
  source.Add(4, 0.4);
  source.Add(9, 0.9);
  ResultList moved = std::move(source);
  EXPECT_EQ(moved.ShotIds(), (std::vector<ShotId>{9, 4}));
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move): pinned
  source.Add(1, 1.0);           // and still usable
  EXPECT_EQ(source.size(), 1u);
}

TEST(ResultListConcurrentTest, ConcurrentCopiesOfSharedListAreIdentical) {
  // The cache's serving pattern: one stored list, every hit takes a copy
  // concurrently with other hits.
  ResultList shared = MakeUnsorted(256);
  const std::string expected = Fingerprint(ResultList(shared.items()));
  constexpr size_t kThreads = 8;
  std::vector<std::string> seen(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const ResultList copy = shared;
        seen[t] = Fingerprint(copy);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace ivr
