// Chaos acceptance test: the full generate -> save -> load -> index ->
// simulate -> persist-log -> reload-log -> evaluate pipeline, run
// in-process with faults injected at EVERY site at p=0.05. The pipeline
// must complete (degrading, retrying, or salvaging as designed), never
// crash, and account for the damage in its HealthReport. Single-threaded
// throughout, so the run — including which calls fault — is reproducible
// bit for bit and asserted below by running it twice.

#include <string>

#include <gtest/gtest.h>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/retry.h"
#include "ivr/eval/experiment.h"
#include "ivr/eval/trec_run.h"
#include "ivr/iface/session_log.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

/// Retry policy for the chaos run: no real sleeping, and enough attempts
/// that a p=0.05 per-call fault cannot realistically exhaust them.
RetryOptions ChaosRetries() {
  RetryOptions options;
  options.max_attempts = 20;
  options.sleep_ms = [](int64_t) {};
  return options;
}

struct PipelineOutcome {
  std::string run_text;
  double map = 0.0;
  size_t sessions = 0;
  size_t log_events = 0;
  uint64_t faults_injected = 0;
  uint64_t checks = 0;
  HealthReport health;
};

PipelineOutcome RunChaosPipeline(uint64_t fault_seed) {
  ScopedFaultInjection chaos("all:0.05", fault_seed);
  EXPECT_TRUE(chaos.status().ok());

  // Generate and persist the collection (atomic write under fault fire).
  GeneratorOptions gen_options;
  gen_options.seed = 33;
  gen_options.num_topics = 4;
  gen_options.num_videos = 6;
  const GeneratedCollection generated =
      GenerateCollection(gen_options).value();
  const std::string path =
      ::testing::TempDir() + "/ivr_chaos_" + std::to_string(fault_seed) +
      ".ivr";
  const Status saved = RetryOnIOError(
      [&] { return SaveCollection(generated, path); }, ChaosRetries());
  EXPECT_TRUE(saved.ok()) << saved.ToString();

  // Load it back through the robust loader (retry + salvage path).
  const GeneratedCollection g =
      RetryOnIOError([&] { return LoadCollectionRobust(path); },
                     ChaosRetries())
          .value();

  // Index. A concept.build fault degrades to text-only, never fails.
  auto engine = RetrievalEngine::Build(g.collection).value();

  // Simulate sessions through the full Search path (the static backend
  // drives every engine.* fault site); per-query faults degrade results,
  // never abort the session.
  SessionSimulator simulator(g.collection, g.qrels);
  const UserModel users[] = {NoviceUser(), ExpertUser()};
  StaticBackend backend(*engine);
  std::vector<SessionSimulator::SweepJob> jobs;
  for (const SearchTopic& topic : g.topics.topics) {
    for (const UserModel& user : users) {
      for (uint64_t s = 0; s < 3; ++s) {
        SessionSimulator::SweepJob job;
        job.topic = &topic;
        job.user = &user;
        job.config.seed = 100 + topic.id * 10 + s;
        job.config.session_id = "chaos-t" + std::to_string(topic.id) +
                                "-" + user.name + "-s" + std::to_string(s);
        job.config.user_id = user.name;
        jobs.push_back(job);
      }
    }
  }
  SessionLog log;
  const auto sweep = simulator.RunSweep(
      jobs, [&backend](size_t) -> SearchBackend* { return &backend; },
      /*threads=*/1, &log);
  EXPECT_TRUE(sweep.ok()) << sweep.status().ToString();

  // Persist and reload the log (checksummed envelope both ways).
  const std::string log_path = path + ".log";
  const Status log_saved = RetryOnIOError(
      [&] { return log.Save(log_path); }, ChaosRetries());
  EXPECT_TRUE(log_saved.ok()) << log_saved.ToString();
  const SessionLog reloaded =
      RetryOnIOError([&] { return SessionLog::Load(log_path); },
                     ChaosRetries())
          .value();
  EXPECT_EQ(reloaded.size(), log.size());

  // One adaptive session on top, so the personalisation fault sites
  // (adaptive.feedback / adaptive.profile) are under chaos as well.
  AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
  adaptive.BeginSession();
  Query adaptive_query;
  adaptive_query.text = g.topics.topics[0].title;
  const ResultList first = adaptive.Search(adaptive_query, 20);
  if (!first.empty()) {
    InteractionEvent click;
    click.session_id = "chaos-adaptive";
    click.user_id = users[0].name;
    click.type = EventType::kClickKeyframe;
    click.shot = first.at(0).shot;
    adaptive.ObserveEvent(click);
  }
  adaptive.Search(adaptive_query, 20);

  // Evaluate a batch run of the (possibly degraded) engine.
  SystemRun run;
  run.system = "chaos";
  for (const SearchTopic& topic : g.topics.topics) {
    Query query;
    query.text = topic.title;
    run.runs[topic.id] = engine->Search(query, 100);
  }
  const SystemEvaluation eval =
      EvaluateSystem(run, g.qrels, g.qrels.Topics(), 1, /*threads=*/1);

  PipelineOutcome outcome;
  outcome.run_text = RunsToTrecFormat(run.runs, "chaos");
  outcome.map = eval.mean.ap;
  outcome.sessions = sweep->size();
  outcome.log_events = reloaded.size();
  outcome.faults_injected = FaultInjector::Global().num_injected();
  outcome.checks = FaultInjector::Global().num_checks();
  outcome.health = engine->Health();
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_TRUE(RemoveFile(log_path).ok());
  return outcome;
}

TEST(ChaosPipelineTest, FullPipelineSurvivesFaultsEverywhere) {
  const PipelineOutcome outcome = RunChaosPipeline(2026);
  EXPECT_EQ(outcome.sessions, 24u);
  EXPECT_GT(outcome.log_events, 0u);
  // Chaos actually happened: sites were checked and some fired. (The run
  // is deterministic in the fault seed, so these are stable, not flaky.)
  EXPECT_GT(outcome.checks, 40u);
  EXPECT_GT(outcome.faults_injected, 0u);
  // The engine accounted for the injected damage.
  EXPECT_EQ(outcome.health.faults_injected, outcome.faults_injected);
  // Results still came back for every topic despite the faults.
  EXPECT_FALSE(outcome.run_text.empty());
  EXPECT_GT(outcome.map, 0.0);
}

TEST(ChaosPipelineTest, ChaosRunsAreReproducible) {
  const PipelineOutcome a = RunChaosPipeline(7);
  const PipelineOutcome b = RunChaosPipeline(7);
  EXPECT_EQ(a.run_text, b.run_text);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.log_events, b.log_events);
  EXPECT_EQ(a.map, b.map);
}

TEST(ChaosPipelineTest, HealthReportSurfacesDegradation) {
  // Force every per-query modality fault: all searches degrade to empty
  // results, but Search never throws and Health tells the story.
  GeneratorOptions gen_options;
  gen_options.seed = 5;
  gen_options.num_topics = 3;
  gen_options.num_videos = 4;
  const GeneratedCollection g = GenerateCollection(gen_options).value();
  auto engine = RetrievalEngine::Build(g.collection).value();

  ScopedFaultInjection chaos("engine.text:1,engine.visual:1,engine.concept:1",
                             1);
  ASSERT_TRUE(chaos.status().ok());
  Query query;
  query.text = g.topics.topics[0].title;
  SearchDiagnostics diagnostics;
  const ResultList results = engine->Search(query, 10, &diagnostics);
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(diagnostics.text_faulted);
  EXPECT_TRUE(diagnostics.any_degradation());

  const HealthReport health = engine->Health();
  EXPECT_TRUE(health.degraded());
  EXPECT_EQ(health.degraded_queries, 1u);
  EXPECT_EQ(health.text_faults, 1u);
  EXPECT_NE(health.ToString().find("degraded"), std::string::npos);
}

}  // namespace
}  // namespace ivr
