// Crash-atomicity sweep for Publish(): reconstruct every on-disk state a
// kill mid-publish can leave — the new segment file cut at any byte, the
// manifest append cut at any byte — and prove a reload serves EXACTLY
// generation G or G+1, bit-identical to the corresponding clean build,
// with the salvage counters accounting for every dropped file.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/live_engine.h"
#include "ivr/ingest/manifest.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

GeneratedCollection MakeBase() {
  GeneratorOptions options;
  options.seed = 2008;
  options.num_videos = 5;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

GeneratedCollection MakeStream() {
  GeneratorOptions options;
  options.seed = 41;
  options.num_videos = 2;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  if (FileExists(dir)) {
    const auto entries = ListDirectory(dir);
    if (entries.ok()) {
      for (const std::string& entry : *entries) {
        (void)RemoveFile(dir + "/" + entry);
      }
    }
  }
  return dir;
}

std::string Ranking(const EngineSnapshot& snapshot) {
  const SearchTopic& topic = snapshot.topics->topics.at(0);
  Query query;
  query.text = topic.title;
  query.examples = topic.examples;
  const ResultList list = snapshot.engine->Search(query, 10);
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    out += StrFormat("%u:%.17g ", list.at(i).shot, list.at(i).score);
  }
  return out;
}

/// Writes one reconstructed crash state into `dir`.
void MaterializeState(const std::string& dir, const std::string& seg1,
                      const std::string& seg1_bytes,
                      const std::string& seg2,
                      const std::string& seg2_bytes,
                      const std::string& manifest_bytes) {
  ASSERT_TRUE(MakeDirectory(dir).ok());
  const auto entries = ListDirectory(dir);
  if (entries.ok()) {
    for (const std::string& entry : *entries) {
      (void)RemoveFile(dir + "/" + entry);
    }
  }
  ASSERT_TRUE(WriteStringToFile(dir + "/" + seg1, seg1_bytes).ok());
  if (!seg2_bytes.empty()) {
    ASSERT_TRUE(WriteStringToFile(dir + "/" + seg2, seg2_bytes).ok());
  }
  ASSERT_TRUE(
      WriteStringToFile(LiveEngine::ManifestPath(dir), manifest_bytes).ok());
}

TEST(IngestKillPublishTest, EveryCrashPointServesExactlyGOrGPlusOne) {
  // Stage the real history once: generation 1 (video 0), then
  // generation 2 (video 1), capturing the byte-level file states.
  const std::string stage = FreshDir("kill_stage");
  const GeneratedCollection stream = MakeStream();
  const std::string seg1 = LiveEngine::SegmentName(1);
  const std::string seg2 = LiveEngine::SegmentName(2);
  std::string ranking_g1;
  std::string ranking_g2;
  {
    IngestOptions options;
    options.dir = stage;
    auto live = LiveEngine::Open(MakeBase(), options).value();
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
    ASSERT_TRUE(live->Publish().ok());
    ranking_g1 = Ranking(*live->Acquire());
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 1).ok());
    ASSERT_TRUE(live->Publish().ok());
    ranking_g2 = Ranking(*live->Acquire());
  }
  ASSERT_NE(ranking_g1, ranking_g2);
  const std::string seg1_bytes =
      ReadFileToString(stage + "/" + seg1).value();
  const std::string seg2_bytes =
      ReadFileToString(stage + "/" + seg2).value();
  const std::string manifest_after =
      ReadFileToString(LiveEngine::ManifestPath(stage)).value();
  // The manifest is append-only, so the pre-publish journal is a strict
  // prefix of the post-publish one. Find its length by replaying: the
  // first record's chunk ends where the second begins — recover it by
  // binary-searching the cut that still loads one record.
  size_t manifest_g1_size = 0;
  {
    ManifestLog probe(LiveEngine::ManifestPath(stage));
    const auto loaded = probe.Load();
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->records.size(), 2u);
    for (size_t cut = 1; cut < manifest_after.size(); ++cut) {
      const std::string probe_path =
          ::testing::TempDir() + "/kill_probe_manifest";
      ASSERT_TRUE(WriteStringToFile(probe_path,
                                    manifest_after.substr(0, cut)).ok());
      const auto partial = ManifestLog(probe_path).Load();
      ASSERT_TRUE(partial.ok());
      if (partial->records.size() == 1 && partial->torn_chunks == 0) {
        manifest_g1_size = cut;  // keep the largest clean 1-record prefix
      }
    }
    ASSERT_GT(manifest_g1_size, 0u);
  }
  const std::string manifest_g1 = manifest_after.substr(0, manifest_g1_size);

  const std::string dir = FreshDir("kill_sweep");
  size_t served_g1 = 0;
  size_t served_g2 = 0;

  const auto check_state = [&](const std::string& seg2_state,
                               const std::string& manifest_state,
                               const std::string& label) {
    MaterializeState(dir, seg1, seg1_bytes, seg2, seg2_state,
                     manifest_state);
    IngestOptions options;
    options.dir = dir;
    auto live = LiveEngine::Open(MakeBase(), options);
    ASSERT_TRUE(live.ok()) << label << ": " << live.status().ToString();
    const auto snapshot = (*live)->Acquire();
    const IngestStats stats = (*live)->Stats();
    if (snapshot->generation == 1) {
      ++served_g1;
      EXPECT_EQ(Ranking(*snapshot), ranking_g1) << label;
      // The half-written generation-2 artifacts are fully accounted for:
      // a seg2 file on disk was dropped as exactly one orphan or one torn
      // segment, never both, never silently.
      const uint64_t dropped =
          stats.orphan_segments_dropped + stats.torn_segments_dropped;
      EXPECT_EQ(dropped, seg2_state.empty() ? 0u : 1u) << label;
    } else {
      ASSERT_EQ(snapshot->generation, 2u) << label;
      ++served_g2;
      EXPECT_EQ(Ranking(*snapshot), ranking_g2) << label;
      EXPECT_EQ(stats.orphan_segments_dropped, 0u) << label;
      EXPECT_EQ(stats.torn_segments_dropped, 0u) << label;
    }
  };

  // Phase 1 — killed while writing the segment file (manifest still at
  // generation 1): sweep ~24 cuts of seg2 plus the empty and full states.
  std::vector<size_t> seg_cuts = {0, 1, seg2_bytes.size() - 1,
                                  seg2_bytes.size()};
  for (size_t i = 1; i <= 24; ++i) {
    seg_cuts.push_back(i * seg2_bytes.size() / 25);
  }
  for (const size_t cut : seg_cuts) {
    check_state(seg2_bytes.substr(0, cut), manifest_g1,
                StrFormat("seg cut %zu/%zu", cut, seg2_bytes.size()));
  }

  // Phase 2 — segment complete, killed during the manifest append: sweep
  // EVERY byte of the appended chunk.
  for (size_t cut = manifest_g1_size; cut <= manifest_after.size(); ++cut) {
    check_state(seg2_bytes, manifest_after.substr(0, cut),
                StrFormat("manifest cut %zu/%zu", cut,
                          manifest_after.size()));
  }

  // Both outcomes actually occurred in the sweep, and nothing else did.
  EXPECT_GT(served_g1, 0u);
  EXPECT_GT(served_g2, 0u);
  // Only the complete manifest state serves generation 2.
  EXPECT_EQ(served_g2, 1u);
}

// A kill between mkstemp() and rename() strands a "<target>.tmpXXXXXX"
// file. Those must be swept (and counted separately from the salvage
// counters) at the next open, without touching any live artifact.
TEST(IngestKillPublishTest, StaleTempFilesAreSweptAndCountedAtOpen) {
  const std::string dir = FreshDir("kill_stale_temps");
  const GeneratedCollection stream = MakeStream();
  std::string ranking_g1;
  {
    IngestOptions options;
    options.dir = dir;
    auto live = LiveEngine::Open(MakeBase(), options).value();
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
    ASSERT_TRUE(live->Publish().ok());
    ranking_g1 = Ranking(*live->Acquire());
  }
  // Two stranded temps (a torn segment write and a torn manifest write)
  // plus one file that merely looks similar but is NOT an mkstemp temp.
  const std::string seg_temp = dir + "/seg-000002.seg.tmpQx9Z2a";
  const std::string manifest_temp = dir + "/MANIFEST.tmpB7c8D9";
  const std::string decoy = dir + "/seg-000001.seg.tmpfile";
  ASSERT_TRUE(WriteStringToFile(seg_temp, "torn segment bytes").ok());
  ASSERT_TRUE(WriteStringToFile(manifest_temp, "torn manifest").ok());
  ASSERT_TRUE(WriteStringToFile(decoy, "not a temp").ok());

  IngestOptions options;
  options.dir = dir;
  auto live = LiveEngine::Open(MakeBase(), options).value();
  EXPECT_FALSE(FileExists(seg_temp));
  EXPECT_FALSE(FileExists(manifest_temp));
  EXPECT_TRUE(FileExists(decoy));
  const IngestStats stats = live->Stats();
  EXPECT_EQ(stats.stale_temp_files_removed, 2u);
  // Disjoint from the salvage accounting: nothing real was dropped.
  EXPECT_EQ(stats.orphan_segments_dropped, 0u);
  EXPECT_EQ(stats.torn_segments_dropped, 0u);
  // Serving is untouched by the sweep.
  const auto snapshot = live->Acquire();
  EXPECT_EQ(snapshot->generation, 1u);
  EXPECT_EQ(Ranking(*snapshot), ranking_g1);
}

// The directory-entry fsync after rename is a real fault site: when it
// fails, Publish() must report the error and restore the pending delta,
// and a fault-free retry must converge to a state a reload serves
// bit-identically — with the abandoned segment file counted as exactly
// one orphan.
TEST(IngestKillPublishTest, DirSyncFaultAbortsPublishCleanly) {
  const std::string dir = FreshDir("kill_dirsync");
  const GeneratedCollection stream = MakeStream();
  IngestOptions options;
  options.dir = dir;
  std::string ranking;
  uint64_t generation = 0;
  {
    auto live = LiveEngine::Open(MakeBase(), options).value();
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
    {
      ScopedFaultInjection faults("file.atomic.dirsync:1.0", 1);
      EXPECT_FALSE(live->Publish().ok());
    }
    EXPECT_EQ(live->Stats().publish_failures, 1u);
    // The delta survived the failure; a clean retry publishes it.
    const Result<uint64_t> retried = live->Publish();
    ASSERT_TRUE(retried.ok()) << retried.status().ToString();
    const auto snapshot = live->Acquire();
    generation = snapshot->generation;
    ranking = Ranking(*snapshot);
  }
  auto reopened = LiveEngine::Open(MakeBase(), options).value();
  const auto snapshot = reopened->Acquire();
  EXPECT_EQ(snapshot->generation, generation);
  EXPECT_EQ(Ranking(*snapshot), ranking);
  // The segment file renamed before the failed dir fsync is on disk but
  // referenced by no manifest record: exactly one orphan, zero torn.
  const IngestStats stats = reopened->Stats();
  EXPECT_EQ(stats.orphan_segments_dropped, 1u);
  EXPECT_EQ(stats.torn_segments_dropped, 0u);
}

}  // namespace
}  // namespace ivr
