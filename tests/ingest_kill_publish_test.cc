// Crash-atomicity sweep for Publish(): reconstruct every on-disk state a
// kill mid-publish can leave — the new segment file cut at any byte, the
// manifest append cut at any byte — and prove a reload serves EXACTLY
// generation G or G+1, bit-identical to the corresponding clean build,
// with the salvage counters accounting for every dropped file.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/live_engine.h"
#include "ivr/ingest/manifest.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

GeneratedCollection MakeBase() {
  GeneratorOptions options;
  options.seed = 2008;
  options.num_videos = 5;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

GeneratedCollection MakeStream() {
  GeneratorOptions options;
  options.seed = 41;
  options.num_videos = 2;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  if (FileExists(dir)) {
    const auto entries = ListDirectory(dir);
    if (entries.ok()) {
      for (const std::string& entry : *entries) {
        (void)RemoveFile(dir + "/" + entry);
      }
    }
  }
  return dir;
}

std::string Ranking(const EngineSnapshot& snapshot) {
  const SearchTopic& topic = snapshot.data->topics.topics.at(0);
  Query query;
  query.text = topic.title;
  query.examples = topic.examples;
  const ResultList list = snapshot.engine->Search(query, 10);
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    out += StrFormat("%u:%.17g ", list.at(i).shot, list.at(i).score);
  }
  return out;
}

/// Writes one reconstructed crash state into `dir`.
void MaterializeState(const std::string& dir, const std::string& seg1,
                      const std::string& seg1_bytes,
                      const std::string& seg2,
                      const std::string& seg2_bytes,
                      const std::string& manifest_bytes) {
  ASSERT_TRUE(MakeDirectory(dir).ok());
  const auto entries = ListDirectory(dir);
  if (entries.ok()) {
    for (const std::string& entry : *entries) {
      (void)RemoveFile(dir + "/" + entry);
    }
  }
  ASSERT_TRUE(WriteStringToFile(dir + "/" + seg1, seg1_bytes).ok());
  if (!seg2_bytes.empty()) {
    ASSERT_TRUE(WriteStringToFile(dir + "/" + seg2, seg2_bytes).ok());
  }
  ASSERT_TRUE(
      WriteStringToFile(LiveEngine::ManifestPath(dir), manifest_bytes).ok());
}

TEST(IngestKillPublishTest, EveryCrashPointServesExactlyGOrGPlusOne) {
  // Stage the real history once: generation 1 (video 0), then
  // generation 2 (video 1), capturing the byte-level file states.
  const std::string stage = FreshDir("kill_stage");
  const GeneratedCollection stream = MakeStream();
  const std::string seg1 = LiveEngine::SegmentName(1);
  const std::string seg2 = LiveEngine::SegmentName(2);
  std::string ranking_g1;
  std::string ranking_g2;
  {
    IngestOptions options;
    options.dir = stage;
    auto live = LiveEngine::Open(MakeBase(), options).value();
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
    ASSERT_TRUE(live->Publish().ok());
    ranking_g1 = Ranking(*live->Acquire());
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 1).ok());
    ASSERT_TRUE(live->Publish().ok());
    ranking_g2 = Ranking(*live->Acquire());
  }
  ASSERT_NE(ranking_g1, ranking_g2);
  const std::string seg1_bytes =
      ReadFileToString(stage + "/" + seg1).value();
  const std::string seg2_bytes =
      ReadFileToString(stage + "/" + seg2).value();
  const std::string manifest_after =
      ReadFileToString(LiveEngine::ManifestPath(stage)).value();
  // The manifest is append-only, so the pre-publish journal is a strict
  // prefix of the post-publish one. Find its length by replaying: the
  // first record's chunk ends where the second begins — recover it by
  // binary-searching the cut that still loads one record.
  size_t manifest_g1_size = 0;
  {
    ManifestLog probe(LiveEngine::ManifestPath(stage));
    const auto loaded = probe.Load();
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->records.size(), 2u);
    for (size_t cut = 1; cut < manifest_after.size(); ++cut) {
      const std::string probe_path =
          ::testing::TempDir() + "/kill_probe_manifest";
      ASSERT_TRUE(WriteStringToFile(probe_path,
                                    manifest_after.substr(0, cut)).ok());
      const auto partial = ManifestLog(probe_path).Load();
      ASSERT_TRUE(partial.ok());
      if (partial->records.size() == 1 && partial->torn_chunks == 0) {
        manifest_g1_size = cut;  // keep the largest clean 1-record prefix
      }
    }
    ASSERT_GT(manifest_g1_size, 0u);
  }
  const std::string manifest_g1 = manifest_after.substr(0, manifest_g1_size);

  const std::string dir = FreshDir("kill_sweep");
  size_t served_g1 = 0;
  size_t served_g2 = 0;

  const auto check_state = [&](const std::string& seg2_state,
                               const std::string& manifest_state,
                               const std::string& label) {
    MaterializeState(dir, seg1, seg1_bytes, seg2, seg2_state,
                     manifest_state);
    IngestOptions options;
    options.dir = dir;
    auto live = LiveEngine::Open(MakeBase(), options);
    ASSERT_TRUE(live.ok()) << label << ": " << live.status().ToString();
    const auto snapshot = (*live)->Acquire();
    const IngestStats stats = (*live)->Stats();
    if (snapshot->generation == 1) {
      ++served_g1;
      EXPECT_EQ(Ranking(*snapshot), ranking_g1) << label;
      // The half-written generation-2 artifacts are fully accounted for:
      // a seg2 file on disk was dropped as exactly one orphan or one torn
      // segment, never both, never silently.
      const uint64_t dropped =
          stats.orphan_segments_dropped + stats.torn_segments_dropped;
      EXPECT_EQ(dropped, seg2_state.empty() ? 0u : 1u) << label;
    } else {
      ASSERT_EQ(snapshot->generation, 2u) << label;
      ++served_g2;
      EXPECT_EQ(Ranking(*snapshot), ranking_g2) << label;
      EXPECT_EQ(stats.orphan_segments_dropped, 0u) << label;
      EXPECT_EQ(stats.torn_segments_dropped, 0u) << label;
    }
  };

  // Phase 1 — killed while writing the segment file (manifest still at
  // generation 1): sweep ~24 cuts of seg2 plus the empty and full states.
  std::vector<size_t> seg_cuts = {0, 1, seg2_bytes.size() - 1,
                                  seg2_bytes.size()};
  for (size_t i = 1; i <= 24; ++i) {
    seg_cuts.push_back(i * seg2_bytes.size() / 25);
  }
  for (const size_t cut : seg_cuts) {
    check_state(seg2_bytes.substr(0, cut), manifest_g1,
                StrFormat("seg cut %zu/%zu", cut, seg2_bytes.size()));
  }

  // Phase 2 — segment complete, killed during the manifest append: sweep
  // EVERY byte of the appended chunk.
  for (size_t cut = manifest_g1_size; cut <= manifest_after.size(); ++cut) {
    check_state(seg2_bytes, manifest_after.substr(0, cut),
                StrFormat("manifest cut %zu/%zu", cut,
                          manifest_after.size()));
  }

  // Both outcomes actually occurred in the sweep, and nothing else did.
  EXPECT_GT(served_g1, 0u);
  EXPECT_GT(served_g2, 0u);
  // Only the complete manifest state serves generation 2.
  EXPECT_EQ(served_g2, 1u);
}

}  // namespace
}  // namespace ivr
