#include "ivr/text/analyzer.h"

#include <gtest/gtest.h>

#include "ivr/text/stopwords.h"

namespace ivr {
namespace {

TEST(StopwordsTest, CommonWordsPresent) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("is"));
  EXPECT_TRUE(IsStopword("dont"));  // post-tokenizer form of "don't"
  EXPECT_FALSE(IsStopword("news"));
  EXPECT_FALSE(IsStopword("retrieval"));
  EXPECT_FALSE(IsStopword(""));
}

TEST(AnalyzerTest, DefaultPipelineStopsAndStems) {
  const Analyzer analyzer;
  EXPECT_EQ(analyzer.Analyze("The connected videos are playing"),
            (std::vector<std::string>{"connect", "video", "plai"}));
}

TEST(AnalyzerTest, QueryAndDocumentAgree) {
  const Analyzer analyzer;
  EXPECT_EQ(analyzer.Analyze("connections"), analyzer.Analyze("connected"));
}

TEST(AnalyzerTest, NoStemmingOption) {
  AnalyzerOptions options;
  options.stem = false;
  const Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("connected videos"),
            (std::vector<std::string>{"connected", "videos"}));
}

TEST(AnalyzerTest, KeepStopwordsOption) {
  AnalyzerOptions options;
  options.remove_stopwords = false;
  options.stem = false;
  const Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("the news"),
            (std::vector<std::string>{"the", "news"}));
}

TEST(AnalyzerTest, DropNumericOption) {
  AnalyzerOptions options;
  options.drop_numeric = true;
  const Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("match 2008 finals"),
            (std::vector<std::string>{"match", "final"}));
}

TEST(AnalyzerTest, MinTokenLength) {
  AnalyzerOptions options;
  options.min_token_length = 4;
  options.stem = false;
  const Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("go find news now"),
            (std::vector<std::string>{"find", "news"}));
}

TEST(AnalyzerTest, AnalyzeTokenFiltersAndStems) {
  const Analyzer analyzer;
  EXPECT_EQ(analyzer.AnalyzeToken("the"), "");
  EXPECT_EQ(analyzer.AnalyzeToken(""), "");
  EXPECT_EQ(analyzer.AnalyzeToken("videos"), "video");
}

TEST(AnalyzerTest, EmptyInput) {
  const Analyzer analyzer;
  EXPECT_TRUE(analyzer.Analyze("").empty());
  EXPECT_TRUE(analyzer.Analyze("the is a of").empty());
}

}  // namespace
}  // namespace ivr
