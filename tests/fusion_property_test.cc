// Property suite for the fusion operators over random result lists.

#include <algorithm>

#include <gtest/gtest.h>

#include "ivr/core/rng.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {
namespace {

std::vector<ResultList> MakeLists(uint64_t seed, size_t n_lists) {
  Rng rng(seed);
  std::vector<ResultList> lists;
  for (size_t l = 0; l < n_lists; ++l) {
    ResultList list;
    const int64_t n = rng.UniformInt(0, 30);
    for (int64_t i = 0; i < n; ++i) {
      list.Add(static_cast<ShotId>(rng.UniformInt(0, 40)),
               rng.Uniform(-5.0, 20.0));
    }
    lists.push_back(std::move(list));
  }
  return lists;
}

class FusionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusionPropertyTest, NormalizeBoundsScores) {
  for (const ResultList& list : MakeLists(GetParam(), 4)) {
    const ResultList norm = MinMaxNormalize(list);
    EXPECT_EQ(norm.size(), list.size());
    for (const RankedShot& r : norm.items()) {
      EXPECT_GE(r.score, 0.0);
      EXPECT_LE(r.score, 1.0);
    }
  }
}

TEST_P(FusionPropertyTest, NormalizePreservesOrder) {
  for (const ResultList& list : MakeLists(GetParam(), 4)) {
    const ResultList norm = MinMaxNormalize(list);
    EXPECT_EQ(norm.ShotIds(), list.ShotIds());
  }
}

TEST_P(FusionPropertyTest, FusedContainsExactlyTheUnion) {
  const auto lists = MakeLists(GetParam(), 3);
  std::set<ShotId> expected;
  for (const ResultList& list : lists) {
    for (const RankedShot& r : list.items()) {
      expected.insert(r.shot);
    }
  }
  for (const ResultList& fused :
       {CombSum(lists), CombMnz(lists), ReciprocalRankFusion(lists),
        BordaCount(lists)}) {
    std::set<ShotId> got;
    for (const RankedShot& r : fused.items()) {
      got.insert(r.shot);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_P(FusionPropertyTest, OperatorsAreOrderInvariant) {
  auto lists = MakeLists(GetParam(), 3);
  auto reversed = lists;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_EQ(CombSum(lists).ShotIds(), CombSum(reversed).ShotIds());
  EXPECT_EQ(CombMnz(lists).ShotIds(), CombMnz(reversed).ShotIds());
  EXPECT_EQ(ReciprocalRankFusion(lists).ShotIds(),
            ReciprocalRankFusion(reversed).ShotIds());
  EXPECT_EQ(BordaCount(lists).ShotIds(), BordaCount(reversed).ShotIds());
}

TEST_P(FusionPropertyTest, RankFusionInvariantToMonotoneScoreTransforms) {
  // RRF and Borda see only ranks: scaling and shifting scores must not
  // change the fused ranking.
  const auto lists = MakeLists(GetParam(), 3);
  std::vector<ResultList> transformed;
  for (const ResultList& list : lists) {
    ResultList t;
    for (const RankedShot& r : list.items()) {
      t.Add(r.shot, 3.0 * r.score + 100.0);
    }
    transformed.push_back(std::move(t));
  }
  EXPECT_EQ(ReciprocalRankFusion(lists).ShotIds(),
            ReciprocalRankFusion(transformed).ShotIds());
  EXPECT_EQ(BordaCount(lists).ShotIds(),
            BordaCount(transformed).ShotIds());
}

TEST_P(FusionPropertyTest, WeightedLinearDegeneratesToSingleList) {
  const auto lists = MakeLists(GetParam(), 2);
  const ResultList fused = WeightedLinear(lists, {1.0, 0.0});
  // Weight-zero lists contribute nothing: result equals normalised first.
  EXPECT_EQ(fused.ShotIds(), MinMaxNormalize(lists[0]).ShotIds());
}

TEST_P(FusionPropertyTest, CombSumOfIdenticalListsKeepsOrder) {
  const auto lists = MakeLists(GetParam(), 1);
  if (lists[0].empty()) return;
  const ResultList fused = CombSum({lists[0], lists[0], lists[0]});
  EXPECT_EQ(fused.ShotIds(), lists[0].ShotIds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ivr
