#include "ivr/video/generator.h"

#include <set>

#include <gtest/gtest.h>

#include "ivr/core/string_util.h"

namespace ivr {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.seed = 7;
  options.num_topics = 5;
  options.num_videos = 6;
  options.stories_per_video_mean = 4;
  options.shots_per_story_mean = 4;
  options.words_per_shot_mean = 20;
  return options;
}

TEST(MakeSyntheticWordTest, InjectiveAndPronounceable) {
  std::set<std::string> seen;
  for (uint64_t i = 0; i < 5000; ++i) {
    const std::string w = MakeSyntheticWord(i);
    EXPECT_GE(w.size(), 6u);  // at least three syllables
    EXPECT_TRUE(seen.insert(w).second) << "collision at " << i;
  }
}

TEST(DefaultTopicNameTest, NamedThenNumbered) {
  EXPECT_EQ(DefaultTopicName(0), "politics");
  EXPECT_EQ(DefaultTopicName(1), "sports");
  EXPECT_EQ(DefaultTopicName(100), "topic100");
}

TEST(GeneratorTest, ValidatesOptions) {
  GeneratorOptions bad = SmallOptions();
  bad.num_topics = 0;
  EXPECT_TRUE(GenerateCollection(bad).status().IsInvalidArgument());

  bad = SmallOptions();
  bad.num_videos = 0;
  EXPECT_TRUE(GenerateCollection(bad).status().IsInvalidArgument());

  bad = SmallOptions();
  bad.asr_word_error_rate = 1.5;
  EXPECT_TRUE(GenerateCollection(bad).status().IsInvalidArgument());

  bad = SmallOptions();
  bad.min_shot_duration_ms = 5000;
  bad.max_shot_duration_ms = 1000;
  EXPECT_TRUE(GenerateCollection(bad).status().IsInvalidArgument());
}

TEST(GeneratorTest, DeterministicInSeed) {
  const GeneratedCollection a = GenerateCollection(SmallOptions()).value();
  const GeneratedCollection b = GenerateCollection(SmallOptions()).value();
  ASSERT_EQ(a.collection.num_shots(), b.collection.num_shots());
  for (size_t i = 0; i < a.collection.num_shots(); ++i) {
    EXPECT_EQ(a.collection.shots()[i].asr_transcript,
              b.collection.shots()[i].asr_transcript);
    EXPECT_EQ(a.collection.shots()[i].primary_topic,
              b.collection.shots()[i].primary_topic);
  }
  EXPECT_EQ(a.qrels.ToTrecFormat(), b.qrels.ToTrecFormat());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions other = SmallOptions();
  other.seed = 8;
  const GeneratedCollection a = GenerateCollection(SmallOptions()).value();
  const GeneratedCollection b = GenerateCollection(other).value();
  EXPECT_NE(a.collection.shots()[0].asr_transcript,
            b.collection.shots()[0].asr_transcript);
}

TEST(GeneratorTest, StructuralConsistency) {
  const GeneratedCollection g = GenerateCollection(SmallOptions()).value();
  const VideoCollection& c = g.collection;
  EXPECT_EQ(c.num_videos(), 6u);
  EXPECT_GT(c.num_stories(), 0u);
  EXPECT_GT(c.num_shots(), 0u);

  // Every shot belongs to its story's shot list; timing is contiguous.
  for (const NewsStory& story : c.stories()) {
    EXPECT_FALSE(story.shots.empty());
    for (ShotId id : story.shots) {
      const Shot* shot = c.shot(id).value();
      EXPECT_EQ(shot->story, story.id);
      EXPECT_EQ(shot->video, story.video);
      EXPECT_GT(shot->duration_ms, 0);
    }
  }
  for (const Video& video : c.videos()) {
    EXPECT_FALSE(video.stories.empty());
    for (StoryId sid : video.stories) {
      EXPECT_EQ(c.story(sid).value()->video, video.id);
    }
  }
}

TEST(GeneratorTest, ShotConceptsIncludePrimaryTopic) {
  const GeneratedCollection g = GenerateCollection(SmallOptions()).value();
  for (const Shot& shot : g.collection.shots()) {
    ASSERT_EQ(shot.concepts.size(), 5u);
    EXPECT_TRUE(shot.concepts[shot.primary_topic]);
    EXPECT_LT(shot.primary_topic, 5u);
  }
}

TEST(GeneratorTest, ExternalIdsUnique) {
  const GeneratedCollection g = GenerateCollection(SmallOptions()).value();
  std::set<std::string> ids;
  for (const Shot& shot : g.collection.shots()) {
    EXPECT_TRUE(ids.insert(shot.external_id).second);
  }
}

TEST(GeneratorTest, QrelsMatchGroundTruth) {
  const GeneratedCollection g = GenerateCollection(SmallOptions()).value();
  ASSERT_EQ(g.topics.size(), 5u);
  for (const SearchTopic& topic : g.topics.topics) {
    for (const Shot& shot : g.collection.shots()) {
      const int grade = g.qrels.Grade(topic.id, shot.id);
      if (shot.primary_topic == topic.target_topic) {
        EXPECT_EQ(grade, 2);
      } else if (shot.concepts[topic.target_topic]) {
        EXPECT_EQ(grade, 1);
      } else {
        EXPECT_EQ(grade, 0);
      }
    }
  }
}

TEST(GeneratorTest, EveryTopicHasRelevantShots) {
  const GeneratedCollection g = GenerateCollection(SmallOptions()).value();
  for (const SearchTopic& topic : g.topics.topics) {
    EXPECT_GT(g.qrels.NumRelevant(topic.id), 0u)
        << "topic " << topic.id << " has no relevant shots";
  }
}

TEST(GeneratorTest, TopicsHaveTitleDescriptionExamples) {
  const GeneratedCollection g = GenerateCollection(SmallOptions()).value();
  for (const SearchTopic& topic : g.topics.topics) {
    EXPECT_FALSE(topic.title.empty());
    EXPECT_GT(topic.description.size(), topic.title.size());
    EXPECT_EQ(topic.examples.size(), 2u);
  }
}

TEST(GeneratorTest, ZeroWerKeepsTranscriptIntact) {
  GeneratorOptions options = SmallOptions();
  options.asr_word_error_rate = 0.0;
  const GeneratedCollection g = GenerateCollection(options).value();
  for (const Shot& shot : g.collection.shots()) {
    EXPECT_EQ(shot.asr_transcript, shot.true_transcript);
  }
}

TEST(GeneratorTest, HighWerCorruptsTranscripts) {
  GeneratorOptions options = SmallOptions();
  options.asr_word_error_rate = 0.5;
  const GeneratedCollection g = GenerateCollection(options).value();
  size_t corrupted = 0;
  for (const Shot& shot : g.collection.shots()) {
    if (shot.asr_transcript != shot.true_transcript) ++corrupted;
  }
  EXPECT_GT(corrupted, g.collection.num_shots() / 2);
}

TEST(GeneratorTest, OffTopicShotsAppearAtConfiguredRate) {
  GeneratorOptions options = SmallOptions();
  options.num_videos = 20;
  options.off_topic_shot_prob = 0.3;
  const GeneratedCollection g = GenerateCollection(options).value();
  size_t off_topic = 0;
  size_t total = 0;
  for (const NewsStory& story : g.collection.stories()) {
    for (ShotId id : story.shots) {
      if (g.collection.shot(id).value()->primary_topic != story.topic) {
        ++off_topic;
      }
      ++total;
    }
  }
  const double rate = static_cast<double>(off_topic) /
                      static_cast<double>(total);
  EXPECT_NEAR(rate, 0.3, 0.06);
}

TEST(GeneratorTest, SearchTopicCountCanBeLimited) {
  GeneratorOptions options = SmallOptions();
  options.num_search_topics = 3;
  const GeneratedCollection g = GenerateCollection(options).value();
  EXPECT_EQ(g.topics.size(), 3u);
}

}  // namespace
}  // namespace ivr
