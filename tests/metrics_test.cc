#include "ivr/eval/metrics.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

// Topic 1: shots 1, 2, 3 relevant (3 highly relevant = grade 2 for shot 1).
Qrels MakeQrels() {
  Qrels qrels;
  qrels.Set(1, 1, 2);
  qrels.Set(1, 2, 1);
  qrels.Set(1, 3, 1);
  return qrels;
}

TEST(AveragePrecisionTest, PerfectRanking) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 3.0}, {2, 2.0}, {3, 1.0}});
  EXPECT_DOUBLE_EQ(AveragePrecision(run, qrels, 1), 1.0);
}

TEST(AveragePrecisionTest, WorstRankingAmongRetrieved) {
  const Qrels qrels = MakeQrels();
  // Two non-relevant shots first.
  const ResultList run({{10, 5.0}, {11, 4.0}, {1, 3.0}, {2, 2.0},
                        {3, 1.0}});
  // AP = (1/3 + 2/4 + 3/5) / 3.
  EXPECT_NEAR(AveragePrecision(run, qrels, 1),
              (1.0 / 3 + 2.0 / 4 + 3.0 / 5) / 3, 1e-12);
}

TEST(AveragePrecisionTest, MissingRelevantPenalized) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 1.0}});  // finds 1 of 3
  EXPECT_NEAR(AveragePrecision(run, qrels, 1), 1.0 / 3, 1e-12);
}

TEST(AveragePrecisionTest, NoRelevantTopicIsZero) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 1.0}});
  EXPECT_DOUBLE_EQ(AveragePrecision(run, qrels, 99), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(ResultList(), qrels, 1), 0.0);
}

TEST(AveragePrecisionTest, MinGradeRestrictsRelevantSet) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 3.0}, {2, 2.0}});
  // Only shot 1 has grade >= 2.
  EXPECT_DOUBLE_EQ(AveragePrecision(run, qrels, 1, 2), 1.0);
}

TEST(PrecisionAtKTest, CountsRelevantInPrefix) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 5.0}, {10, 4.0}, {2, 3.0}, {11, 2.0}});
  EXPECT_DOUBLE_EQ(PrecisionAtK(run, qrels, 1, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(run, qrels, 1, 4), 0.5);
  // Shorter run than k: divisor stays k (trec_eval convention).
  EXPECT_DOUBLE_EQ(PrecisionAtK(run, qrels, 1, 8), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtK(run, qrels, 1, 0), 0.0);
}

TEST(RecallAtKTest, FractionOfRelevantFound) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 5.0}, {10, 4.0}, {2, 3.0}});
  EXPECT_NEAR(RecallAtK(run, qrels, 1, 1), 1.0 / 3, 1e-12);
  EXPECT_NEAR(RecallAtK(run, qrels, 1, 3), 2.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(RecallAtK(run, qrels, 99, 3), 0.0);
}

TEST(NdcgTest, PerfectOrderIsOne) {
  const Qrels qrels = MakeQrels();
  // Ideal order: grade 2 first.
  const ResultList run({{1, 3.0}, {2, 2.0}, {3, 1.0}});
  EXPECT_NEAR(NdcgAtK(run, qrels, 1, 10), 1.0, 1e-12);
}

TEST(NdcgTest, GradedOrderMatters) {
  const Qrels qrels = MakeQrels();
  const ResultList good({{1, 3.0}, {2, 2.0}});   // grade2 first
  const ResultList bad({{2, 3.0}, {1, 2.0}});    // grade1 first
  EXPECT_GT(NdcgAtK(good, qrels, 1, 10), NdcgAtK(bad, qrels, 1, 10));
}

TEST(NdcgTest, EmptyRunIsZero) {
  const Qrels qrels = MakeQrels();
  EXPECT_DOUBLE_EQ(NdcgAtK(ResultList(), qrels, 1, 10), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(ResultList({{1, 1.0}}), qrels, 1, 0), 0.0);
}

TEST(BprefTest, PerfectRunIsOne) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 3.0}, {2, 2.0}, {3, 1.0}});
  EXPECT_DOUBLE_EQ(Bpref(run, qrels, 1), 1.0);
}

TEST(BprefTest, NonRelevantAboveRelevantPenalized) {
  Qrels qrels = MakeQrels();
  // Judged-nonrelevant shots (grade 0) interleaved above the relevant ones.
  qrels.Set(1, 10, 0);
  qrels.Set(1, 11, 0);
  qrels.Set(1, 12, 0);
  const ResultList run({{10, 9.0}, {1, 8.0}, {11, 7.0}, {2, 6.0},
                        {12, 5.0}, {3, 4.0}});
  // R = 3, N = 3: bpref = 1/3 * [(1 - 1/3) + (1 - 2/3) + (1 - 3/3)].
  EXPECT_NEAR(Bpref(run, qrels, 1),
              ((1 - 1.0 / 3) + (1 - 2.0 / 3) + 0.0) / 3, 1e-12);
}

TEST(BprefTest, UnjudgedShotsAreInvisible) {
  const Qrels qrels = MakeQrels();
  // Shots 10/11/12 were never judged, so bpref must ignore them entirely
  // (the whole point of the measure: robustness to incomplete pools).
  const ResultList run({{10, 9.0}, {1, 8.0}, {11, 7.0}, {2, 6.0},
                        {12, 5.0}, {3, 4.0}});
  EXPECT_DOUBLE_EQ(Bpref(run, qrels, 1), 1.0);
}

TEST(BprefTest, DenominatorIsMinOfRelevantAndNonrelevant) {
  Qrels qrels;
  qrels.Set(1, 1, 1);
  qrels.Set(1, 2, 1);
  qrels.Set(1, 3, 1);
  qrels.Set(1, 10, 0);  // single judged-nonrelevant: N = 1 < R = 3
  const ResultList run({{10, 9.0}, {1, 8.0}, {2, 7.0}, {3, 6.0}});
  // Each relevant has min(nonrel_above, R) = 1 and denominator
  // min(R, N) = 1, so every contribution is 1 - 1/1 = 0.
  EXPECT_DOUBLE_EQ(Bpref(run, qrels, 1), 0.0);
}

TEST(BprefTest, NoJudgedNonrelevantGivesFullCredit) {
  // trec_eval convention: with N == 0 every retrieved relevant shot
  // contributes 1.0.
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 3.0}, {2, 2.0}});
  EXPECT_NEAR(Bpref(run, qrels, 1), 2.0 / 3, 1e-12);
}

TEST(ReciprocalRankTest, FirstRelevantPosition) {
  const Qrels qrels = MakeQrels();
  EXPECT_DOUBLE_EQ(
      ReciprocalRank(ResultList({{10, 2.0}, {1, 1.0}}), qrels, 1), 0.5);
  EXPECT_DOUBLE_EQ(
      ReciprocalRank(ResultList({{10, 2.0}, {11, 1.0}}), qrels, 1), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(ResultList({{1, 1.0}}), qrels, 1), 1.0);
}

TEST(TopicMetricsTest, ComputesAllFields) {
  const Qrels qrels = MakeQrels();
  const ResultList run({{1, 3.0}, {2, 2.0}, {3, 1.0}});
  const TopicMetrics m = ComputeTopicMetrics(run, qrels, 1);
  EXPECT_EQ(m.topic, 1u);
  EXPECT_EQ(m.num_relevant, 3u);
  EXPECT_EQ(m.num_retrieved, 3u);
  EXPECT_DOUBLE_EQ(m.ap, 1.0);
  EXPECT_DOUBLE_EQ(m.p5, 3.0 / 5);
  EXPECT_DOUBLE_EQ(m.rr, 1.0);
  EXPECT_DOUBLE_EQ(m.recall100, 1.0);
  EXPECT_DOUBLE_EQ(m.bpref, 1.0);
}

TEST(MeanMetricsTest, Averages) {
  TopicMetrics a;
  a.ap = 0.4;
  a.p10 = 0.2;
  TopicMetrics b;
  b.ap = 0.8;
  b.p10 = 0.6;
  const TopicMetrics mean = MeanMetrics({a, b});
  EXPECT_DOUBLE_EQ(mean.ap, 0.6);
  EXPECT_DOUBLE_EQ(mean.p10, 0.4);
}

TEST(MeanMetricsTest, EmptyIsZero) {
  const TopicMetrics mean = MeanMetrics({});
  EXPECT_DOUBLE_EQ(mean.ap, 0.0);
  EXPECT_EQ(mean.num_relevant, 0u);
}

}  // namespace
}  // namespace ivr
