#include "ivr/video/collection.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

VideoCollection MakeSmallCollection() {
  VideoCollection c;
  c.SetTopicNames({"politics", "sports"});

  Video v;
  v.name = "day0";
  const VideoId vid = c.AddVideo(v);

  NewsStory story;
  story.video = vid;
  story.topic = 1;
  story.headline = "sports final";
  const StoryId sid = c.AddStory(story);
  c.mutable_video(vid)->stories.push_back(sid);

  for (int i = 0; i < 3; ++i) {
    Shot shot;
    shot.story = sid;
    shot.video = vid;
    shot.primary_topic = i == 2 ? 0u : 1u;
    shot.concepts = {i == 2, i != 2};
    shot.duration_ms = 5000;
    shot.external_id = "v0/s0/k" + std::to_string(i);
    const ShotId id = c.AddShot(shot);
    c.mutable_story(sid)->shots.push_back(id);
  }
  return c;
}

TEST(VideoCollectionTest, AddAssignsDenseIds) {
  const VideoCollection c = MakeSmallCollection();
  EXPECT_EQ(c.num_videos(), 1u);
  EXPECT_EQ(c.num_stories(), 1u);
  EXPECT_EQ(c.num_shots(), 3u);
  EXPECT_EQ(c.shots()[0].id, 0u);
  EXPECT_EQ(c.shots()[2].id, 2u);
}

TEST(VideoCollectionTest, AccessorsValidateIds) {
  const VideoCollection c = MakeSmallCollection();
  EXPECT_TRUE(c.video(0).ok());
  EXPECT_TRUE(c.video(5).status().IsOutOfRange());
  EXPECT_TRUE(c.story(0).ok());
  EXPECT_TRUE(c.story(1).status().IsOutOfRange());
  EXPECT_TRUE(c.shot(2).ok());
  EXPECT_TRUE(c.shot(3).status().IsOutOfRange());
  EXPECT_TRUE(c.shot(kInvalidShotId).status().IsOutOfRange());
}

TEST(VideoCollectionTest, MutableAccessors) {
  VideoCollection c = MakeSmallCollection();
  EXPECT_NE(c.mutable_story(0), nullptr);
  EXPECT_EQ(c.mutable_story(9), nullptr);
  EXPECT_NE(c.mutable_video(0), nullptr);
  EXPECT_EQ(c.mutable_video(9), nullptr);
}

TEST(VideoCollectionTest, TopicNames) {
  const VideoCollection c = MakeSmallCollection();
  EXPECT_EQ(c.num_topics(), 2u);
  EXPECT_EQ(c.TopicName(0), "politics");
  EXPECT_EQ(c.TopicName(1), "sports");
  EXPECT_EQ(c.TopicName(7), "topic7");  // beyond the named range
}

TEST(VideoCollectionTest, StoryOfShot) {
  const VideoCollection c = MakeSmallCollection();
  const NewsStory* story = c.StoryOfShot(1).value();
  EXPECT_EQ(story->id, 0u);
  EXPECT_EQ(story->headline, "sports final");
  EXPECT_TRUE(c.StoryOfShot(99).status().IsOutOfRange());
}

TEST(VideoCollectionTest, ShotsWithPrimaryTopic) {
  const VideoCollection c = MakeSmallCollection();
  EXPECT_EQ(c.ShotsWithPrimaryTopic(1),
            (std::vector<ShotId>{0, 1}));
  EXPECT_EQ(c.ShotsWithPrimaryTopic(0), (std::vector<ShotId>{2}));
  EXPECT_TRUE(c.ShotsWithPrimaryTopic(9).empty());
}

TEST(VideoCollectionTest, AllKeyframesAligned) {
  const VideoCollection c = MakeSmallCollection();
  const auto keyframes = c.AllKeyframes();
  EXPECT_EQ(keyframes.size(), c.num_shots());
}

TEST(VideoCollectionTest, StoryShotListBackfilled) {
  const VideoCollection c = MakeSmallCollection();
  const NewsStory* story = c.story(0).value();
  EXPECT_EQ(story->shots.size(), 3u);
  const Video* video = c.video(0).value();
  EXPECT_EQ(video->stories.size(), 1u);
}

}  // namespace
}  // namespace ivr
