// Chaos-tier observability test: the "faults" section of the stats
// snapshot is derived at snapshot time from the FaultInjector's own
// per-site tallies, and the obs mirror counters incremented at each
// engine fault site must agree with those tallies exactly — a chaos run
// whose telemetry disagrees with its injector would make every fault
// experiment unauditable.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ivr/core/fault_injection.h"
#include "ivr/core/string_util.h"
#include "ivr/obs/metrics.h"
#include "ivr/obs/report.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

TEST(StatsFaultTest, SnapshotFaultSectionMatchesInjectorTally) {
  ScopedFaultInjection chaos("engine.text:0.5,engine.visual:0.25", 13);
  ASSERT_TRUE(chaos.status().ok());
  obs::Registry::Global().ResetValues();

  GeneratorOptions options;
  options.seed = 99;
  options.num_topics = 4;
  options.num_videos = 8;
  const GeneratedCollection g = GenerateCollection(options).value();
  const std::unique_ptr<RetrievalEngine> engine =
      RetrievalEngine::Build(g.collection).value();

  for (int round = 0; round < 10; ++round) {
    for (const SearchTopic& topic : g.topics.topics) {
      Query query;
      query.text = topic.title;
      query.examples = topic.examples;
      (void)engine->Search(query, 20);
    }
  }

  const std::vector<FaultInjector::SiteStats> sites =
      FaultInjector::Global().PerSiteStats();
  ASSERT_FALSE(sites.empty());
  uint64_t text_injected = 0;
  uint64_t visual_injected = 0;
  const std::string json = obs::StatsJson();
  for (const FaultInjector::SiteStats& site : sites) {
    // The snapshot must carry each checked site verbatim with the
    // injector's own numbers (report.cc reads them at snapshot time, so
    // there is no second bookkeeping path that could drift).
    const std::string expected = StrFormat(
        "\"%s\": {\"calls\": %llu, \"injected\": %llu}", site.site.c_str(),
        static_cast<unsigned long long>(site.calls),
        static_cast<unsigned long long>(site.injected));
    EXPECT_NE(json.find(expected), std::string::npos)
        << "missing " << expected << " in:\n" << json;
    if (site.site == "engine.text") text_injected = site.injected;
    if (site.site == "engine.visual") visual_injected = site.injected;
  }
  EXPECT_GT(text_injected, 0u) << "p=0.5 over 40 queries never fired";

#ifdef IVR_OBS_OFF
  (void)visual_injected;  // Mirror-counter checks below are compiled out.
#else
  // The obs mirror counters at the fault sites agree with the injector.
  obs::Registry& registry = obs::Registry::Global();
  EXPECT_EQ(registry.GetCounter("engine.text_faults")->value(),
            text_injected);
  EXPECT_EQ(registry.GetCounter("engine.visual_faults")->value(),
            visual_injected);
  const uint64_t degraded =
      registry.GetCounter("engine.degraded_queries")->value();
  EXPECT_GT(degraded, 0u);
  EXPECT_LE(degraded, text_injected + visual_injected);
#endif
}

TEST(StatsFaultTest, FaultSectionEmptyWithoutChaos) {
  FaultInjector::Global().Disable();
  const std::string json = obs::StatsJson();
  EXPECT_NE(json.find("\"faults\": {}"), std::string::npos) << json;
}

}  // namespace
}  // namespace ivr
