#include "ivr/feedback/weighting.h"

#include <gtest/gtest.h>

#include "ivr/core/rng.h"

namespace ivr {
namespace {

ShotIndicators Touched() {
  ShotIndicators s;
  s.shot = 1;
  s.clicks = 1;
  s.play_count = 1;
  s.play_fraction = 0.95;
  s.play_time_ms = 5000;
  return s;
}

ShotIndicators BrowsedPast() {
  ShotIndicators s;
  s.shot = 2;
  s.displays = 1;
  s.browsed_past = true;
  return s;
}

TEST(IndicatorFeaturesTest, DimensionsAndNames) {
  const auto features = IndicatorFeatures(Touched());
  EXPECT_EQ(features.size(), kNumIndicatorFeatures);
  EXPECT_EQ(IndicatorFeatureNames().size(), kNumIndicatorFeatures);
}

TEST(IndicatorFeaturesTest, SquashingBoundsCounts) {
  ShotIndicators s;
  s.seeks = 1000000;
  s.metadata_highlights = 1000000;
  const auto features = IndicatorFeatures(s);
  for (double f : features) {
    EXPECT_GE(f, -1.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(BinaryWeightingTest, SignedTriState) {
  const BinaryWeighting scheme;
  EXPECT_DOUBLE_EQ(scheme.Score(Touched()), 1.0);
  EXPECT_DOUBLE_EQ(scheme.Score(BrowsedPast()), 0.0);
  ShotIndicators negative = Touched();
  negative.explicit_judgment = -1;
  EXPECT_DOUBLE_EQ(scheme.Score(negative), -1.0);
  EXPECT_EQ(scheme.name(), "binary");
}

TEST(UniformWeightingTest, CountsDistinctIndicators) {
  const UniformWeighting scheme;
  ShotIndicators s = Touched();  // click + play
  EXPECT_DOUBLE_EQ(scheme.Score(s), 2.0);
  s.seeks = 3;  // still one indicator type
  EXPECT_DOUBLE_EQ(scheme.Score(s), 3.0);
  EXPECT_DOUBLE_EQ(scheme.Score(BrowsedPast()), -1.0);
}

TEST(LinearWeightingTest, DefaultsRewardEngagement) {
  const LinearWeighting scheme;
  const double touched = scheme.Score(Touched());
  const double browsed = scheme.Score(BrowsedPast());
  EXPECT_GT(touched, 0.0);
  EXPECT_LT(browsed, 0.0);
  EXPECT_GT(touched, browsed);
}

TEST(LinearWeightingTest, PlayCompletionBonusApplies) {
  const LinearWeighting scheme;
  ShotIndicators complete = Touched();
  complete.play_fraction = 0.95;
  ShotIndicators partial = Touched();
  partial.play_fraction = 0.85;
  EXPECT_GT(scheme.Score(complete) - scheme.Score(partial),
            scheme.weights().play_completion_bonus * 0.9);
}

TEST(LinearWeightingTest, UsedAsExampleIsStrongEvidence) {
  const LinearWeighting scheme;
  ShotIndicators with = Touched();
  with.used_as_example = 1;
  EXPECT_NEAR(scheme.Score(with) - scheme.Score(Touched()),
              scheme.weights().used_as_example, 1e-12);
  // It alone makes a shot "actively interacted with" for binary/uniform.
  ShotIndicators only_example;
  only_example.used_as_example = 1;
  EXPECT_DOUBLE_EQ(BinaryWeighting().Score(only_example), 1.0);
  EXPECT_DOUBLE_EQ(UniformWeighting().Score(only_example), 1.0);
}

TEST(LinearWeightingTest, ExplicitJudgmentsDominate) {
  const LinearWeighting scheme;
  ShotIndicators pos = Touched();
  pos.explicit_judgment = 1;
  ShotIndicators neg = Touched();
  neg.explicit_judgment = -1;
  EXPECT_GT(scheme.Score(pos), scheme.Score(Touched()));
  EXPECT_LT(scheme.Score(neg), 0.0);
}

TEST(LinearWeightingTest, CustomWeightsRespected) {
  IndicatorWeights weights;
  weights.click = 10.0;
  weights.play_fraction = 0.0;
  weights.play_completion_bonus = 0.0;
  const LinearWeighting scheme(weights, "custom");
  EXPECT_EQ(scheme.name(), "custom");
  ShotIndicators s;
  s.clicks = 2;
  EXPECT_DOUBLE_EQ(scheme.Score(s), 10.0);
}

// Build a labelled dataset where relevant shots are played long and
// clicked, irrelevant ones browsed past — the learnable structure.
std::vector<LabeledIndicators> MakeTrainingData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledIndicators> data;
  for (size_t i = 0; i < n; ++i) {
    LabeledIndicators ex;
    ex.relevant = rng.Bernoulli(0.5);
    ex.indicators.shot = static_cast<ShotId>(i);
    ex.indicators.displays = 1;
    if (ex.relevant) {
      ex.indicators.clicks = rng.Bernoulli(0.85) ? 1 : 0;
      ex.indicators.play_fraction = rng.Uniform(0.6, 1.0);
      ex.indicators.play_count = 1;
    } else {
      ex.indicators.clicks = rng.Bernoulli(0.15) ? 1 : 0;
      ex.indicators.play_fraction = rng.Uniform(0.0, 0.3);
      ex.indicators.play_count = ex.indicators.clicks;
      ex.indicators.browsed_past = ex.indicators.clicks == 0;
    }
    data.push_back(ex);
  }
  return data;
}

TEST(LearnedWeightingTest, LearnsSeparableStructure) {
  LearnedWeighting scheme;
  const auto train = MakeTrainingData(400, 1);
  const double loss = scheme.Train(train);
  EXPECT_LT(loss, 0.5);  // much better than chance (log 2 ~ 0.69)

  // Evaluate accuracy on held-out data.
  const auto test = MakeTrainingData(400, 2);
  size_t correct = 0;
  for (const LabeledIndicators& ex : test) {
    const bool predicted = scheme.Probability(ex.indicators) > 0.5;
    if (predicted == ex.relevant) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.8);
}

TEST(LearnedWeightingTest, ScoreInSignedUnitRange) {
  LearnedWeighting scheme;
  scheme.Train(MakeTrainingData(200, 3));
  for (const LabeledIndicators& ex : MakeTrainingData(50, 4)) {
    const double score = scheme.Score(ex.indicators);
    EXPECT_GE(score, -1.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(LearnedWeightingTest, UntrainedIsNeutral) {
  const LearnedWeighting scheme;
  EXPECT_DOUBLE_EQ(scheme.Probability(Touched()), 0.5);
  EXPECT_DOUBLE_EQ(scheme.Score(Touched()), 0.0);
}

TEST(LearnedWeightingTest, EmptyTrainingIsNoop) {
  LearnedWeighting scheme;
  EXPECT_DOUBLE_EQ(scheme.Train({}), 0.0);
  EXPECT_DOUBLE_EQ(scheme.Score(Touched()), 0.0);
}

TEST(LearnedWeightingTest, TrainingIsDeterministic) {
  LearnedWeighting a;
  LearnedWeighting b;
  const auto data = MakeTrainingData(100, 5);
  a.Train(data);
  b.Train(data);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(MakeWeightingSchemeTest, Factory) {
  EXPECT_NE(MakeWeightingScheme("binary"), nullptr);
  EXPECT_NE(MakeWeightingScheme("uniform"), nullptr);
  EXPECT_NE(MakeWeightingScheme("linear"), nullptr);
  EXPECT_EQ(MakeWeightingScheme("learned"), nullptr);  // needs training
  EXPECT_EQ(MakeWeightingScheme("bogus"), nullptr);
}

}  // namespace
}  // namespace ivr
