#include "ivr/core/fault_injection.h"

#include <vector>

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(FaultInjectionTest, DisabledByDefaultAndAfterDisable) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Disable();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFail("file.read"));
  EXPECT_TRUE(injector.MaybeFail("file.read").ok());
}

TEST(FaultInjectionTest, SpecParseErrors) {
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.Configure("", 1).IsInvalidArgument());
  EXPECT_TRUE(injector.Configure("siteonly", 1).IsInvalidArgument());
  EXPECT_TRUE(injector.Configure(":0.5", 1).IsInvalidArgument());
  EXPECT_TRUE(injector.Configure("site:notanumber", 1).IsInvalidArgument());
  EXPECT_TRUE(injector.Configure("site:1.5", 1).IsInvalidArgument());
  EXPECT_TRUE(injector.Configure("site:-0.1", 1).IsInvalidArgument());
  // A bad spec leaves the injector disarmed.
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjectionTest, ProbabilityZeroAndOne) {
  ScopedFaultInjection chaos("never:0,always:1", 42);
  ASSERT_TRUE(chaos.status().ok());
  FaultInjector& injector = FaultInjector::Global();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFail("never"));
    EXPECT_TRUE(injector.ShouldFail("always"));
    // Unconfigured sites never fire without an "all" default.
    EXPECT_FALSE(injector.ShouldFail("unlisted"));
  }
  EXPECT_EQ(injector.num_injected(), 100u);
  // Sites outside the spec (and outside any "all" default) don't count as
  // checks — they are not under injection at all.
  EXPECT_EQ(injector.num_checks(), 200u);
}

TEST(FaultInjectionTest, AllWildcardAppliesToUnlistedSites) {
  ScopedFaultInjection chaos("all:1,exempt:0", 7);
  ASSERT_TRUE(chaos.status().ok());
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.ShouldFail("anything.at.all"));
  EXPECT_FALSE(injector.ShouldFail("exempt"));
}

TEST(FaultInjectionTest, DeterministicInSeedSiteAndOrdinal) {
  const auto sample = [](uint64_t seed) {
    ScopedFaultInjection chaos("a:0.5,b:0.5", seed);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(FaultInjector::Global().ShouldFail("a"));
      out.push_back(FaultInjector::Global().ShouldFail("b"));
    }
    return out;
  };
  const std::vector<bool> run1 = sample(11);
  const std::vector<bool> run2 = sample(11);
  EXPECT_EQ(run1, run2);
  // A different seed produces a different failure pattern.
  EXPECT_NE(run1, sample(12));
}

TEST(FaultInjectionTest, SiteStreamsAreIndependent) {
  // The failure sequence at site "a" must not depend on how often other
  // sites are checked (each site has its own ordinal counter).
  const auto sample_a = [](int b_checks_between) {
    ScopedFaultInjection chaos("a:0.5,b:0.5", 99);
    std::vector<bool> out;
    for (int i = 0; i < 32; ++i) {
      out.push_back(FaultInjector::Global().ShouldFail("a"));
      for (int j = 0; j < b_checks_between; ++j) {
        FaultInjector::Global().ShouldFail("b");
      }
    }
    return out;
  };
  EXPECT_EQ(sample_a(0), sample_a(3));
}

TEST(FaultInjectionTest, InjectionRateTracksProbability) {
  ScopedFaultInjection chaos("site:0.3", 5);
  size_t fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (FaultInjector::Global().ShouldFail("site")) ++fired;
  }
  EXPECT_GT(fired, 2000 * 0.2);
  EXPECT_LT(fired, 2000 * 0.4);
}

TEST(FaultInjectionTest, MaybeFailNamesTheSite) {
  ScopedFaultInjection chaos("boom:1", 1);
  const Status status = FaultInjector::Global().MaybeFail("boom");
  EXPECT_TRUE(status.IsIOError());
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(FaultInjectionTest, SummaryReportsPerSiteCounts) {
  ScopedFaultInjection chaos("hit:1,miss:0", 1);
  FaultInjector& injector = FaultInjector::Global();
  for (int i = 0; i < 3; ++i) {
    injector.ShouldFail("hit");
    injector.ShouldFail("miss");
  }
  const std::string summary = injector.Summary();
  EXPECT_NE(summary.find("injected faults: 3/6 checks"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("hit: 3/3"), std::string::npos) << summary;
  EXPECT_NE(summary.find("miss: 0/3"), std::string::npos) << summary;
}

}  // namespace
}  // namespace ivr
