// Corruption-hardening sweep: every loader must answer damaged input with
// a clean Status (kCorruption / kIOError), never a crash, and the salvage
// paths must recover what is recoverable. Run under IVR_SANITIZE=address
// this doubles as a memory-safety audit of the parsers.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/core/checksum.h"
#include "ivr/core/file_util.h"
#include "ivr/iface/session_log.h"
#include "ivr/ingest/manifest.h"
#include "ivr/ingest/segment.h"
#include "ivr/profile/profile_store.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

GeneratedCollection MakeCollection() {
  GeneratorOptions options;
  options.seed = 77;
  options.num_topics = 3;
  options.num_videos = 4;
  return GenerateCollection(options).value();
}

std::string SavedCollectionBytes(const std::string& path) {
  EXPECT_TRUE(SaveCollection(MakeCollection(), path).ok());
  return ReadFileToString(path).value();
}

TEST(CorruptionSweepTest, TruncationAtEveryRecordBoundary) {
  const std::string path =
      ::testing::TempDir() + "/ivr_corrupt_truncate.ivr";
  const std::string bytes = SavedCollectionBytes(path);
  ASSERT_GT(bytes.size(), 0u);

  // Cut the file after every newline (record boundary) plus the
  // pathological empty file. No prefix may load cleanly — the envelope's
  // length check catches all of them — and none may crash.
  std::vector<size_t> cuts = {0};
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') cuts.push_back(i + 1);
  }
  for (const size_t cut : cuts) {
    if (cut == bytes.size()) continue;
    ASSERT_TRUE(WriteStringToFile(path, bytes.substr(0, cut)).ok());
    const auto loaded = LoadCollection(path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
    EXPECT_TRUE(loaded.status().IsCorruption() ||
                loaded.status().IsIOError())
        << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, HeaderBitFlips) {
  const std::string path = ::testing::TempDir() + "/ivr_corrupt_flip.ivr";
  const std::string bytes = SavedCollectionBytes(path);
  const size_t limit = std::min<size_t>(64, bytes.size());
  for (size_t i = 0; i < limit; ++i) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
      const auto loaded = LoadCollection(path);
      // A flip inside the envelope header or payload must be caught by the
      // header parse or the checksum.
      EXPECT_FALSE(loaded.ok())
          << "bit flip at byte " << i << " went undetected";
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, PayloadBitFlipFailsChecksumButSalvages) {
  const std::string path =
      ::testing::TempDir() + "/ivr_corrupt_payload.ivr";
  const std::string bytes = SavedCollectionBytes(path);
  // Flip a byte well inside the payload (past the envelope header).
  std::string mutated = bytes;
  mutated[bytes.size() / 2] ^= 0x04;
  ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
  EXPECT_TRUE(LoadCollection(path).status().IsCorruption());

  // The robust loader falls back to salvage and still serves a
  // collection; at most the damaged records are gone.
  size_t dropped = 0;
  const auto robust = LoadCollectionRobust(path, &dropped);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_GT(robust->collection.num_shots(), 0u);
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, RecoverCollectionSkipsBadRecords) {
  const GeneratedCollection original = MakeCollection();
  const std::string payload = SerializeCollection(original);

  // Mangle the first two records in the shots section: one torn mid-line,
  // one replaced with garbage.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= payload.size()) {
    const size_t end = payload.find('\n', start);
    if (end == std::string::npos) break;
    lines.push_back(payload.substr(start, end - start));
    start = end + 1;
  }
  int mangled = 0;
  bool in_shots = false;
  for (std::string& line : lines) {
    if (line.compare(0, 6, "shots ") == 0) {
      in_shots = true;
      continue;
    }
    if (in_shots && mangled < 2) {
      // Torn after a handful of bytes (too few columns) / pure garbage:
      // neither can possibly parse as a shot record.
      line = mangled == 0 ? line.substr(0, 10) : "garbage";
      ++mangled;
    }
  }
  ASSERT_EQ(mangled, 2);
  std::string damaged;
  for (const std::string& line : lines) damaged += line + "\n";

  const std::string path = ::testing::TempDir() + "/ivr_salvage.ivr";
  ASSERT_TRUE(
      WriteStringToFile(path, WrapEnvelope("collection", damaged)).ok());
  // Strict load refuses; salvage recovers everything but the two shots.
  EXPECT_FALSE(LoadCollection(path).ok());
  const CollectionRecovery recovery = RecoverCollection(path).value();
  // At least the two mangled shots; judgements referencing them go too.
  EXPECT_GE(recovery.dropped_records, 2u);
  EXPECT_EQ(recovery.generated.collection.num_shots(),
            original.collection.num_shots() - 2);
  EXPECT_EQ(recovery.generated.collection.num_videos(),
            original.collection.num_videos());
  EXPECT_FALSE(recovery.notes.empty());
  // The salvaged collection is internally consistent: every shot's parent
  // story exists and lists it.
  for (const Shot& shot : recovery.generated.collection.shots()) {
    const NewsStory* story =
        recovery.generated.collection.story(shot.story).value();
    bool listed = false;
    for (ShotId id : story->shots) listed = listed || id == shot.id;
    EXPECT_TRUE(listed);
  }
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, SegmentEnvelopeRejectsAllDamage) {
  const std::string path = ::testing::TempDir() + "/ivr_corrupt.seg";
  ASSERT_TRUE(SaveSegment(MakeCollection(), path).ok());
  const std::string bytes = ReadFileToString(path).value();
  ASSERT_TRUE(LoadSegment(path).ok());

  // Segments have NO salvage fallback of their own: any torn prefix or
  // flipped bit must fail closed with kCorruption/kIOError so the ingest
  // replay drops the whole segment (counted) instead of serving half of
  // a publish.
  for (size_t cut = 0; cut < bytes.size();
       cut += std::max<size_t>(1, bytes.size() / 64)) {
    ASSERT_TRUE(WriteStringToFile(path, bytes.substr(0, cut)).ok());
    const auto loaded = LoadSegment(path);
    EXPECT_FALSE(loaded.ok()) << "segment prefix of " << cut << " loaded";
    EXPECT_TRUE(loaded.status().IsCorruption() ||
                loaded.status().IsIOError())
        << loaded.status().ToString();
  }
  for (size_t i = 0; i < bytes.size();
       i += std::max<size_t>(1, bytes.size() / 64)) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
    EXPECT_FALSE(LoadSegment(path).ok())
        << "segment bit flip at byte " << i << " went undetected";
  }

  // The format tag is load-bearing: a full collection snapshot is not a
  // segment, even though both use the same archive payload.
  ASSERT_TRUE(SaveCollection(MakeCollection(), path).ok());
  EXPECT_FALSE(LoadSegment(path).ok());
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, ManifestEnvelopeDamageNeverCrashesReplay) {
  const std::string path = ::testing::TempDir() + "/ivr_corrupt_manifest";
  std::remove(path.c_str());
  ManifestLog log(path);
  ManifestRecord record;
  record.generation = 1;
  record.segments = {"seg-000001.seg"};
  ASSERT_TRUE(log.Append(record).ok());
  record.generation = 2;
  record.segments.push_back("seg-000002.seg");
  ASSERT_TRUE(log.Append(record).ok());
  const std::string bytes = ReadFileToString(path).value();

  // Bit-flip every byte of the journal: replay must stay a clean load
  // that stops trusting the file at the damage point. Whenever a record
  // was lost, the torn-chunk counter says so — damage is never silent.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x08);
    ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
    const auto loaded = log.Load();
    ASSERT_TRUE(loaded.ok()) << "flip at byte " << i;
    EXPECT_LE(loaded->records.size(), 2u);
    if (loaded->records.size() < 2) {
      EXPECT_GE(loaded->torn_chunks, 1u)
          << "flip at byte " << i << " silently dropped a record";
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, ProfileStoreTruncationAndSalvage) {
  ProfileStore store;
  for (int i = 0; i < 5; ++i) {
    UserProfile profile("user" + std::to_string(i));
    profile.SetInterest(static_cast<TopicLabel>(i % 3), 1.0 + i);
    ASSERT_TRUE(store.Add(std::move(profile)).ok());
  }
  const std::string path = ::testing::TempDir() + "/ivr_profiles.ivrp";
  ASSERT_TRUE(store.Save(path).ok());
  const std::string bytes = ReadFileToString(path).value();

  // Every non-empty truncation point is detected (envelope length/CRC) —
  // no prefix yields a quietly half-loaded store. (A fully empty file is
  // indistinguishable from an empty legacy store and loads as one.)
  for (size_t cut = 1; cut < bytes.size(); cut += 7) {
    ASSERT_TRUE(WriteStringToFile(path, bytes.substr(0, cut)).ok());
    EXPECT_FALSE(ProfileStore::Load(path).ok()) << "cut at " << cut;
  }

  // Lenient parse of a damaged payload drops only the bad lines.
  size_t dropped = 0;
  const ProfileStore salvaged = ProfileStore::DeserializeLenient(
      "user0\t0:1.0\nuser9\ttorn-entry-without-colon\nuser1\t1:2.0\n",
      &dropped);
  EXPECT_EQ(salvaged.size(), 2u);
  EXPECT_EQ(dropped, 1u);
  std::remove(path.c_str());
}

TEST(CorruptionSweepTest, SessionLogLenientParse) {
  SessionLog log;
  InteractionEvent event;
  event.session_id = "s1";
  event.user_id = "u";
  event.type = EventType::kQuerySubmit;
  event.text = "query words";
  log.Append(event);
  event.type = EventType::kSessionEnd;
  log.Append(event);

  const std::string good = log.Serialize();
  const std::string damaged =
      good + "torn line without enough fields\n" + good;
  size_t dropped = 0;
  const SessionLog salvaged = SessionLog::ParseLenient(damaged, &dropped);
  EXPECT_EQ(salvaged.size(), 4u);
  EXPECT_EQ(dropped, 1u);

  // Strict parse refuses the same input.
  EXPECT_FALSE(SessionLog::Parse(damaged).ok());
}

TEST(CorruptionSweepTest, SessionLogSaveLoadDetectsTamper) {
  SessionLog log;
  InteractionEvent event;
  event.session_id = "s1";
  event.user_id = "u";
  event.type = EventType::kQuerySubmit;
  event.text = "q";
  log.Append(event);
  const std::string path = ::testing::TempDir() + "/ivr_sessions.tsv";
  ASSERT_TRUE(log.Save(path).ok());
  ASSERT_EQ(SessionLog::Load(path).value().size(), 1u);

  std::string bytes = ReadFileToString(path).value();
  bytes[bytes.size() - 2] ^= 0x10;
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  EXPECT_TRUE(SessionLog::Load(path).status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ivr
