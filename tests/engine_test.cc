#include "ivr/retrieval/engine.h"

#include <gtest/gtest.h>

#include "ivr/video/generator.h"

namespace ivr {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 11;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
};

TEST_F(EngineTest, BuildRejectsBadOptions) {
  EngineOptions bad;
  bad.scorer = "unknown";
  EXPECT_TRUE(RetrievalEngine::Build(generated_->collection, bad)
                  .status()
                  .IsInvalidArgument());
  bad = EngineOptions();
  bad.text_weight = 0.0;
  bad.visual_weight = 0.0;
  EXPECT_TRUE(RetrievalEngine::Build(generated_->collection, bad)
                  .status()
                  .IsInvalidArgument());
  bad = EngineOptions();
  bad.text_weight = -1.0;
  EXPECT_TRUE(RetrievalEngine::Build(generated_->collection, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EngineTest, TextSearchFindsTopicalShots) {
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;
  const ResultList results = engine_->Search(query, 20);
  ASSERT_FALSE(results.empty());
  // The majority of the top 10 should be truly relevant.
  size_t relevant = 0;
  for (size_t i = 0; i < std::min<size_t>(10, results.size()); ++i) {
    if (generated_->qrels.IsRelevant(topic.id, results.at(i).shot)) {
      ++relevant;
    }
  }
  EXPECT_GE(relevant, 6u);
}

TEST_F(EngineTest, VisualSearchFindsTopicalShots) {
  const SearchTopic& topic = generated_->topics.topics[1];
  Query query;
  query.examples = topic.examples;
  const ResultList results = engine_->Search(query, 20);
  ASSERT_FALSE(results.empty());
  size_t relevant = 0;
  for (size_t i = 0; i < std::min<size_t>(10, results.size()); ++i) {
    if (generated_->qrels.IsRelevant(topic.id, results.at(i).shot)) {
      ++relevant;
    }
  }
  EXPECT_GE(relevant, 5u);
}

TEST_F(EngineTest, MultimodalBeatsNothing) {
  const SearchTopic& topic = generated_->topics.topics[2];
  Query query;
  query.text = topic.title;
  query.examples = topic.examples;
  const ResultList results = engine_->Search(query, 50);
  EXPECT_FALSE(results.empty());
}

TEST_F(EngineTest, EmptyQueryYieldsNothing) {
  EXPECT_TRUE(engine_->Search(Query(), 10).empty());
}

TEST_F(EngineTest, SearchIsDeterministic) {
  Query query;
  query.text = generated_->topics.topics[0].title;
  const ResultList a = engine_->Search(query, 30);
  const ResultList b = engine_->Search(query, 30);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).shot, b.at(i).shot);
    EXPECT_DOUBLE_EQ(a.at(i).score, b.at(i).score);
  }
}

TEST_F(EngineTest, KTruncates) {
  Query query;
  query.text = generated_->topics.topics[0].title;
  EXPECT_LE(engine_->Search(query, 5).size(), 5u);
}

TEST_F(EngineTest, IndexedTextCombinesTranscriptAndHeadline) {
  const Shot& shot = generated_->collection.shots()[0];
  const std::string text = engine_->IndexedText(shot.id);
  EXPECT_NE(text.find(shot.asr_transcript), std::string::npos);
  const NewsStory* story =
      generated_->collection.story(shot.story).value();
  EXPECT_NE(text.find(story->headline), std::string::npos);
  EXPECT_TRUE(engine_->IndexedText(999999).empty());
}

TEST_F(EngineTest, ScoreShotConsistentWithSearch) {
  const TermQuery terms =
      engine_->ParseText(generated_->topics.topics[0].title);
  const ResultList results = engine_->SearchTerms(terms, 10);
  ASSERT_FALSE(results.empty());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(engine_->ScoreShot(terms, results.at(i).shot),
                results.at(i).score, 1e-9);
  }
}

TEST_F(EngineTest, HeadlineIndexingCanBeDisabled) {
  EngineOptions options;
  options.index_headlines = false;
  auto engine =
      RetrievalEngine::Build(generated_->collection, options).value();
  const Shot& shot = generated_->collection.shots()[0];
  EXPECT_EQ(engine->IndexedText(shot.id), shot.asr_transcript);
}

TEST_F(EngineTest, StatsExposed) {
  EXPECT_EQ(engine_->num_shots(), generated_->collection.num_shots());
  EXPECT_EQ(engine_->index().num_documents(),
            generated_->collection.num_shots());
  EXPECT_GT(engine_->index().num_terms(), 0u);
}

}  // namespace
}  // namespace ivr
