#include "ivr/adaptive/recommender.h"

#include <gtest/gtest.h>

#include "ivr/video/generator.h"

namespace ivr {
namespace {

class RecommenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 41;
    options.num_topics = 5;
    options.num_videos = 12;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    recommender_ = std::make_unique<NewsRecommender>(
        generated_->collection, *engine_);
  }

  TopicLabel StoryTopic(StoryId id) const {
    return generated_->collection.story(id).value()->topic;
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<NewsRecommender> recommender_;
};

TEST_F(RecommenderTest, ProfileDrivenRecommendationsMatchInterests) {
  UserProfile profile("politics-junkie");
  profile.SetInterest(0, 1.0);  // topic 0 = politics
  const auto recs = recommender_->Recommend(profile, {}, 5);
  ASSERT_FALSE(recs.empty());
  // Most of the top stories should be about the preferred topic.
  size_t on_topic = 0;
  for (const StoryRecommendation& r : recs) {
    if (StoryTopic(r.story) == 0) ++on_topic;
  }
  EXPECT_GE(on_topic, recs.size() - 1);
}

TEST_F(RecommenderTest, ScoresDescending) {
  UserProfile profile("u");
  profile.SetInterest(1, 1.0);
  const auto recs = recommender_->Recommend(profile, {}, 10);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].score, recs[i].score);
  }
}

TEST_F(RecommenderTest, TopNLimits) {
  UserProfile profile("u");
  profile.SetInterest(0, 1.0);
  EXPECT_LE(recommender_->Recommend(profile, {}, 3).size(), 3u);
  const size_t all =
      recommender_->Recommend(profile, {}, 1000000).size();
  EXPECT_EQ(all, generated_->collection.num_stories());
}

TEST_F(RecommenderTest, ImplicitHistoryDrivesContentMatch) {
  // Empty profile; history full of positive evidence on topic-2 shots.
  const UserProfile profile("newcomer");
  std::vector<RelevanceEvidence> history;
  for (ShotId shot : generated_->collection.ShotsWithPrimaryTopic(2)) {
    history.push_back(RelevanceEvidence{shot, 1.0});
    if (history.size() >= 8) break;
  }
  RecommenderOptions options;
  options.profile_weight = 0.0;
  options.implicit_weight = 1.0;
  const auto recs = recommender_->Recommend(profile, history, 5, options);
  ASSERT_FALSE(recs.empty());
  size_t on_topic = 0;
  for (const StoryRecommendation& r : recs) {
    if (StoryTopic(r.story) == 2) ++on_topic;
  }
  EXPECT_GE(on_topic, 4u);
}

TEST_F(RecommenderTest, DayFilterRestrictsStories) {
  UserProfile profile("u");
  profile.SetInterest(0, 1.0);
  RecommenderOptions options;
  options.day = 3;
  const auto recs =
      recommender_->Recommend(profile, {}, 100, options);
  ASSERT_FALSE(recs.empty());
  for (const StoryRecommendation& r : recs) {
    const NewsStory* story =
        generated_->collection.story(r.story).value();
    EXPECT_EQ(generated_->collection.video(story->video).value()->day, 3);
  }
}

TEST_F(RecommenderTest, EmptyProfileAndHistoryYieldsUniformZero) {
  const UserProfile profile("blank");
  const auto recs = recommender_->Recommend(profile, {}, 5);
  for (const StoryRecommendation& r : recs) {
    EXPECT_DOUBLE_EQ(r.score, 0.0);
  }
}

TEST_F(RecommenderTest, BlendWeightsSteerTheTopRecommendation) {
  // Profile likes topic 0, history likes topic 1: whichever signal the
  // blend weights favour determines the top story.
  UserProfile profile("mixed");
  profile.SetInterest(0, 1.0);
  std::vector<RelevanceEvidence> history;
  for (ShotId shot : generated_->collection.ShotsWithPrimaryTopic(1)) {
    history.push_back(RelevanceEvidence{shot, 1.0});
    if (history.size() >= 8) break;
  }

  RecommenderOptions profile_heavy;
  profile_heavy.profile_weight = 0.9;
  profile_heavy.implicit_weight = 0.1;
  const auto by_profile =
      recommender_->Recommend(profile, history, 1, profile_heavy);
  ASSERT_EQ(by_profile.size(), 1u);
  EXPECT_EQ(StoryTopic(by_profile[0].story), 0u);

  RecommenderOptions implicit_heavy;
  implicit_heavy.profile_weight = 0.1;
  implicit_heavy.implicit_weight = 0.9;
  const auto by_history =
      recommender_->Recommend(profile, history, 1, implicit_heavy);
  ASSERT_EQ(by_history.size(), 1u);
  EXPECT_EQ(StoryTopic(by_history[0].story), 1u);
}

}  // namespace
}  // namespace ivr
