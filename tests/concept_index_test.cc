#include "ivr/retrieval/concept_index.h"

#include <gtest/gtest.h>

#include "ivr/eval/metrics.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class ConceptIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 81;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
  }

  SimulatedConceptDetector MakeDetector(double mean_positive) const {
    SimulatedConceptDetector::Options options;
    options.mean_positive = mean_positive;
    return SimulatedConceptDetector(generated_->collection.num_topics(),
                                    options, 5);
  }

  std::unique_ptr<GeneratedCollection> generated_;
};

TEST_F(ConceptIndexTest, DimensionsMatchCollection) {
  const ConceptIndex index(generated_->collection, MakeDetector(0.8));
  EXPECT_EQ(index.num_shots(), generated_->collection.num_shots());
  EXPECT_EQ(index.num_concepts(), 4u);
}

TEST_F(ConceptIndexTest, ConfidencesInRangeAndDeterministic) {
  const ConceptIndex a(generated_->collection, MakeDetector(0.8));
  const ConceptIndex b(generated_->collection, MakeDetector(0.8));
  for (ShotId shot = 0; shot < 20; ++shot) {
    for (ConceptId c = 0; c < 4; ++c) {
      const double conf = a.Confidence(shot, c);
      EXPECT_GE(conf, 0.0);
      EXPECT_LE(conf, 1.0);
      EXPECT_DOUBLE_EQ(conf, b.Confidence(shot, c));
    }
  }
}

TEST_F(ConceptIndexTest, OutOfRangeIsZero) {
  const ConceptIndex index(generated_->collection, MakeDetector(0.8));
  EXPECT_DOUBLE_EQ(index.Confidence(999999, 0), 0.0);
  EXPECT_DOUBLE_EQ(index.Confidence(0, 999), 0.0);
}

TEST_F(ConceptIndexTest, GoodDetectorRanksTrueConceptShotsOnTop) {
  const ConceptIndex index(generated_->collection, MakeDetector(0.95));
  const SearchTopic& topic = generated_->topics.topics[1];
  const ResultList run = index.Search(topic.target_topic, 1000);
  const double ap =
      AveragePrecision(run, generated_->qrels, topic.id);
  EXPECT_GT(ap, 0.8);
}

TEST_F(ConceptIndexTest, UninformativeDetectorNearChance) {
  const ConceptIndex index(generated_->collection, MakeDetector(0.5));
  const SearchTopic& topic = generated_->topics.topics[1];
  const double ap = AveragePrecision(index.Search(topic.target_topic, 1000),
                                     generated_->qrels, topic.id);
  // Chance level is roughly the relevant fraction of the collection.
  const double chance =
      static_cast<double>(generated_->qrels.NumRelevant(topic.id)) /
      static_cast<double>(generated_->collection.num_shots());
  EXPECT_LT(ap, chance * 2.5);
}

TEST_F(ConceptIndexTest, DetectorQualityOrdersAp) {
  const SearchTopic& topic = generated_->topics.topics[0];
  double previous = -1.0;
  for (double quality : {0.55, 0.7, 0.85, 0.95}) {
    const ConceptIndex index(generated_->collection,
                             MakeDetector(quality));
    const double ap = AveragePrecision(
        index.Search(topic.target_topic, 1000), generated_->qrels,
        topic.id);
    EXPECT_GT(ap, previous) << "quality " << quality;
    previous = ap;
  }
}

TEST_F(ConceptIndexTest, SearchAllAveragesConcepts) {
  const ConceptIndex index(generated_->collection, MakeDetector(0.9));
  EXPECT_TRUE(index.SearchAll({}, 10).empty());
  const ResultList both = index.SearchAll({0, 1}, 1000);
  ASSERT_FALSE(both.empty());
  const ShotId top = both.at(0).shot;
  EXPECT_NEAR(both.at(0).score,
              (index.Confidence(top, 0) + index.Confidence(top, 1)) / 2.0,
              1e-12);
}

TEST_F(ConceptIndexTest, EngineIntegration) {
  EngineOptions options;
  options.use_concepts = true;
  options.detector.mean_positive = 0.9;
  auto engine =
      RetrievalEngine::Build(generated_->collection, options).value();
  ASSERT_NE(engine->concept_index(), nullptr);

  const SearchTopic& topic = generated_->topics.topics[0];
  // Concept-only query through the multimodal Search path.
  Query query;
  query.concepts = {topic.target_topic};
  const ResultList via_query = engine->Search(query, 100);
  EXPECT_FALSE(via_query.empty());

  // Direct API agrees.
  const ResultList direct =
      engine->SearchConcepts({topic.target_topic}, 100).value();
  EXPECT_EQ(via_query.ShotIds(), direct.ShotIds());

  // Engines without concepts refuse.
  auto plain = RetrievalEngine::Build(generated_->collection).value();
  EXPECT_EQ(plain->concept_index(), nullptr);
  EXPECT_TRUE(plain->SearchConcepts({0}, 10)
                  .status()
                  .IsFailedPrecondition());
  // ...and silently ignore concept parts of multimodal queries.
  Query mixed;
  mixed.text = topic.title;
  mixed.concepts = {topic.target_topic};
  EXPECT_FALSE(plain->Search(mixed, 10).empty());
}

}  // namespace
}  // namespace ivr
