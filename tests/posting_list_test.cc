#include "ivr/index/posting_list.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(PostingListTest, EmptyList) {
  PostingList pl;
  EXPECT_EQ(pl.document_frequency(), 0u);
  EXPECT_EQ(pl.collection_frequency(), 0u);
  EXPECT_EQ(pl.Find(0), nullptr);
}

TEST(PostingListTest, AddAccumulatesStats) {
  PostingList pl;
  pl.Add(0, 3);
  pl.Add(2, 1);
  pl.Add(5, 2);
  EXPECT_EQ(pl.document_frequency(), 3u);
  EXPECT_EQ(pl.collection_frequency(), 6u);
}

TEST(PostingListTest, RepeatedAddForSameDocMerges) {
  PostingList pl;
  pl.Add(4, 1);
  pl.Add(4, 2);
  EXPECT_EQ(pl.document_frequency(), 1u);
  EXPECT_EQ(pl.collection_frequency(), 3u);
  const Posting* p = pl.Find(4);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->tf, 3u);
}

TEST(PostingListTest, ZeroCountIgnored) {
  PostingList pl;
  pl.Add(1, 0);
  EXPECT_EQ(pl.document_frequency(), 0u);
  EXPECT_EQ(pl.collection_frequency(), 0u);
}

TEST(PostingListTest, FindBinarySearches) {
  PostingList pl;
  for (DocId d = 0; d < 100; d += 2) {
    pl.Add(d, d + 1);
  }
  const Posting* p = pl.Find(42);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->doc, 42u);
  EXPECT_EQ(p->tf, 43u);
  EXPECT_EQ(pl.Find(43), nullptr);   // absent odd id
  EXPECT_EQ(pl.Find(1000), nullptr); // beyond the end
}

TEST(PostingListTest, PostingsStaySortedByDoc) {
  PostingList pl;
  pl.Add(1, 1);
  pl.Add(3, 1);
  pl.Add(9, 1);
  const auto& postings = pl.postings();
  for (size_t i = 1; i < postings.size(); ++i) {
    EXPECT_LT(postings[i - 1].doc, postings[i].doc);
  }
}

}  // namespace
}  // namespace ivr
