#include "ivr/net/http_parser.h"

#include <gtest/gtest.h>

#include <string>

namespace ivr {
namespace net {
namespace {

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parser.done());
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_EQ(request.query, "");
  EXPECT_EQ(request.minor_version, 1);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "x");
}

TEST(HttpParserTest, SplitsTargetIntoPathAndQuery) {
  HttpParser parser;
  parser.Feed("GET /v1/search?k=5&x=1 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/v1/search");
  EXPECT_EQ(parser.request().query, "k=5&x=1");
  EXPECT_EQ(parser.request().target, "/v1/search?k=5&x=1");
}

TEST(HttpParserTest, ByteAtATimeFeedingWorks) {
  // The slow-loris shape: correctness must not depend on segmentation.
  const std::string wire =
      "POST /v1/search HTTP/1.1\r\nContent-Length: 4\r\n"
      "X-Custom: hi there \r\n\r\nbody";
  HttpParser parser;
  for (char c : wire) {
    ASSERT_FALSE(parser.failed()) << parser.error_reason();
    parser.Feed(std::string_view(&c, 1));
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "body");
  EXPECT_EQ(*parser.request().FindHeader("x-custom"), "hi there");
}

TEST(HttpParserTest, HeaderNamesLowerCasedValuesTrimmed) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.1\r\nCoNtEnT-TyPe:  application/json  \r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(*parser.request().FindHeader("content-type"),
            "application/json");
}

TEST(HttpParserTest, BareLfLineEndingsAccepted) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.1\nHost: x\n\n");
  ASSERT_TRUE(parser.done());
}

TEST(HttpParserTest, StrayLeadingBlankLineTolerated) {
  HttpParser parser;
  parser.Feed("\r\nGET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
}

TEST(HttpParserTest, KeepAliveDefaults) {
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.0\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_TRUE(parser.request().keep_alive);
  }
}

TEST(HttpParserTest, PipelinedRequestsAcrossReset) {
  HttpParser parser;
  parser.Feed(
      "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  HttpRequest first = parser.TakeRequest();
  EXPECT_EQ(first.path, "/a");
  EXPECT_EQ(first.body, "hi");
  EXPECT_GT(parser.buffered_bytes(), 0u);
  parser.Reset();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/b");
}

TEST(HttpParserTest, SyntaxErrorsAre400) {
  for (const char* wire :
       {"get / HTTP/1.1\r\n\r\n",          // lower-case method
        "GET HTTP/1.1\r\n\r\n",            // no target
        "GET nopath HTTP/1.1\r\n\r\n",     // target not starting with /
        "GET / HTTPX\r\n\r\n",             // garbage version
        "GET / HTTP/1.1\r\nbad header\r\n\r\n",
        "GET / HTTP/1.1\r\n: novalue\r\n\r\n",
        "GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n"}) {
    HttpParser parser;
    parser.Feed(wire);
    ASSERT_TRUE(parser.failed()) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParserTest, UnsupportedHttpVersionIs505) {
  HttpParser parser;
  parser.Feed("GET / HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, ChunkedBodiesRejectedWith501) {
  HttpParser parser;
  parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nbody\r\n0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, OversizedRequestLineIs431) {
  HttpParserLimits limits;
  limits.max_request_line_bytes = 64;
  HttpParser parser(limits);
  parser.Feed("GET /" + std::string(128, 'a'));  // no newline yet
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedHeaderSectionIs431) {
  HttpParserLimits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\n");
  for (int i = 0; i < 32 && !parser.failed(); ++i) {
    parser.Feed("X-Padding-" + std::to_string(i) + ": aaaaaaaa\r\n");
  }
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, TooManyHeadersIs431) {
  HttpParserLimits limits;
  limits.max_headers = 4;
  limits.max_header_bytes = 1 << 20;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\n");
  for (int i = 0; i < 8 && !parser.failed(); ++i) {
    parser.Feed("H" + std::to_string(i) + ": v\r\n");
  }
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, EndlessLinelessStreamHitsTheCap) {
  // An attacker streaming bytes with no newline must not balloon memory.
  HttpParserLimits limits;
  limits.max_request_line_bytes = 1024;
  HttpParser parser(limits);
  for (int i = 0; i < 64 && !parser.failed(); ++i) {
    parser.Feed(std::string(64, 'a'));
  }
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

}  // namespace
}  // namespace net
}  // namespace ivr
