// End-to-end tests over the whole stack: generate a collection, index it,
// simulate users on interfaces backed by static and adaptive engines, and
// evaluate with TRECVID-style metrics — the full pipeline every experiment
// binary exercises.

#include <gtest/gtest.h>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/adaptive/implicit_graph.h"
#include "ivr/eval/experiment.h"
#include "ivr/eval/metrics.h"
#include "ivr/eval/significance.h"
#include "ivr/sim/replayer.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 71;
    options.num_topics = 5;
    options.num_videos = 12;
    // Hard ASR conditions so adaptation has headroom to show effects.
    options.asr_word_error_rate = 0.45;
    options.general_word_prob = 0.6;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
};

TEST_F(IntegrationTest, BaselineRetrievalBeatsRandomOnAllTopics) {
  Rng rng(1);
  for (const SearchTopic& topic : generated_->topics.topics) {
    Query query;
    query.text = topic.title;
    const ResultList run = engine_->Search(query, 100);
    const double ap = AveragePrecision(run, generated_->qrels, topic.id);

    // Random ranking of the same depth.
    std::vector<ShotId> all;
    for (const Shot& shot : generated_->collection.shots()) {
      all.push_back(shot.id);
    }
    rng.Shuffle(&all);
    ResultList random;
    for (size_t i = 0; i < std::min<size_t>(100, all.size()); ++i) {
      random.Add(all[i], 100.0 - static_cast<double>(i));
    }
    const double random_ap =
        AveragePrecision(random, generated_->qrels, topic.id);
    EXPECT_GT(ap, random_ap) << "topic " << topic.id;
  }
}

TEST_F(IntegrationTest, AdaptiveSessionImprovesOverStaticSession) {
  // Identical simulated users run the same topics against a static and an
  // adaptive backend; mean AP of the final query must favour adaptivity.
  SessionSimulator simulator(generated_->collection, generated_->qrels);

  // A persistent user who keeps reformulating (never satisfied early), so
  // later queries exist for the adaptive backend to improve.
  UserModel user = NoviceUser();
  user.satisfaction_target = 1000;
  user.max_queries = 3;
  user.max_pages = 2;
  user.page_patience = 1.0;
  user.session_budget_ms = 30 * kMillisPerMinute;

  double static_ap = 0.0;
  double adaptive_ap = 0.0;
  size_t sessions = 0;
  for (const SearchTopic& topic : generated_->topics.topics) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      SessionSimulator::RunConfig config;
      config.seed = seed;
      config.session_id = "x";

      StaticBackend static_backend(*engine_);
      const SessionOutcome so =
          simulator.Run(&static_backend, topic, user, config, nullptr)
              .value()
              .outcome;

      AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
      const SessionOutcome ao =
          simulator.Run(&adaptive, topic, user, config, nullptr)
              .value()
              .outcome;

      if (so.per_query_results.size() < 2 ||
          ao.per_query_results.size() < 2) {
        continue;
      }
      static_ap += AveragePrecision(so.per_query_results.back(),
                                    generated_->qrels, topic.id);
      adaptive_ap += AveragePrecision(ao.per_query_results.back(),
                                      generated_->qrels, topic.id);
      ++sessions;
    }
  }
  ASSERT_GT(sessions, 0u);
  EXPECT_GT(adaptive_ap, static_ap);
}

TEST_F(IntegrationTest, LogsRoundTripThroughDiskFormatAndReplay) {
  SessionSimulator simulator(generated_->collection, generated_->qrels);
  SessionLog log;
  StaticBackend backend(*engine_);
  SessionSimulator::RunConfig config;
  config.seed = 5;
  config.session_id = "roundtrip";
  simulator
      .Run(&backend, generated_->topics.topics[1], ExpertUser(), config,
           &log)
      .value();

  const SessionLog parsed = SessionLog::Parse(log.Serialize()).value();
  ASSERT_EQ(parsed.size(), log.size());

  const LogReplayer replayer;
  const auto replays = replayer.ReplayAll(parsed, &backend).value();
  ASSERT_EQ(replays.size(), 1u);
  EXPECT_FALSE(replays[0].queries.empty());
}

TEST_F(IntegrationTest, CommunityGraphHelpsNewUsers) {
  // Past users' sessions build the implicit graph; a new user's query is
  // answered from community evidence alone and should surface relevant
  // shots at precision comparable to text search.
  SessionSimulator simulator(generated_->collection, generated_->qrels);
  StaticBackend backend(*engine_);
  const LinearWeighting scheme;
  ImplicitGraph graph(engine_->analyzer());

  const SearchTopic& topic = generated_->topics.topics[0];
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SessionSimulator::RunConfig config;
    config.seed = seed;
    config.session_id = "past-" + std::to_string(seed);
    const SimulatedSession session =
        simulator.Run(&backend, topic, NoviceUser(), config, nullptr)
            .value();
    graph.AddSession(session.events, scheme, &generated_->collection);
  }
  ASSERT_GT(graph.num_edges(), 0u);

  const ResultList recs = graph.Recommend(topic.title, 10);
  ASSERT_FALSE(recs.empty());
  const double p = PrecisionAtK(recs, generated_->qrels, topic.id,
                                std::min<size_t>(10, recs.size()));
  EXPECT_GT(p, 0.5);
}

TEST_F(IntegrationTest, FullEvaluationPipelineProducesTables) {
  // Build SystemRuns for two scorers over all topics, evaluate, compare.
  std::vector<SearchTopicId> topic_ids;
  SystemRun bm25_run;
  bm25_run.system = "bm25";
  EngineOptions tfidf_options;
  tfidf_options.scorer = "tfidf";
  auto tfidf_engine =
      RetrievalEngine::Build(generated_->collection, tfidf_options)
          .value();
  SystemRun tfidf_run;
  tfidf_run.system = "tfidf";
  for (const SearchTopic& topic : generated_->topics.topics) {
    topic_ids.push_back(topic.id);
    Query query;
    query.text = topic.title;
    bm25_run.runs[topic.id] = engine_->Search(query, 100);
    tfidf_run.runs[topic.id] = tfidf_engine->Search(query, 100);
  }
  const SystemEvaluation bm25 =
      EvaluateSystem(bm25_run, generated_->qrels, topic_ids);
  const SystemEvaluation tfidf =
      EvaluateSystem(tfidf_run, generated_->qrels, topic_ids);
  EXPECT_GT(bm25.mean.ap, 0.1);
  EXPECT_GT(tfidf.mean.ap, 0.1);

  const auto ttest = PairedTTest(bm25.ApVector(), tfidf.ApVector());
  ASSERT_TRUE(ttest.ok());
  EXPECT_GE(ttest->p_value, 0.0);
  EXPECT_LE(ttest->p_value, 1.0);

  TextTable table({"system", "MAP", "P@10"});
  for (const SystemEvaluation* eval : {&bm25, &tfidf}) {
    table.AddRow({eval->system, FormatMetric(eval->mean.ap),
                  FormatMetric(eval->mean.p10)});
  }
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace ivr
