#include "ivr/feedback/indicators.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

InteractionEvent MakeEvent(TimeMs time, EventType type,
                           ShotId shot = kInvalidShotId,
                           double value = 0.0) {
  InteractionEvent ev;
  ev.time = time;
  ev.session_id = "s";
  ev.user_id = "u";
  ev.type = type;
  ev.shot = shot;
  ev.value = value;
  return ev;
}

TEST(IndicatorsTest, EmptyEvents) {
  EXPECT_TRUE(AggregateIndicators({}, nullptr).empty());
}

TEST(IndicatorsTest, DisplayAndBestRank) {
  std::vector<InteractionEvent> events = {
      MakeEvent(1, EventType::kResultDisplayed, 7, 4.0),
      MakeEvent(2, EventType::kResultDisplayed, 7, 2.0),
  };
  const auto agg = AggregateIndicators(events, nullptr);
  ASSERT_EQ(agg.size(), 1u);
  const ShotIndicators& s = agg.at(7);
  EXPECT_EQ(s.displays, 2);
  EXPECT_EQ(s.best_rank, 2);
  EXPECT_TRUE(s.browsed_past);  // displayed but never touched
  EXPECT_FALSE(s.HasActiveInteraction());
}

TEST(IndicatorsTest, ClicksAndPlaysAccumulate) {
  std::vector<InteractionEvent> events = {
      MakeEvent(1, EventType::kResultDisplayed, 3, 0.0),
      MakeEvent(2, EventType::kClickKeyframe, 3),
      MakeEvent(3, EventType::kPlayStart, 3),
      MakeEvent(8, EventType::kPlayStop, 3, 5000.0),
      MakeEvent(9, EventType::kPlayStart, 3),
      MakeEvent(10, EventType::kPlayStop, 3, 1000.0),
  };
  const auto agg = AggregateIndicators(events, nullptr);
  const ShotIndicators& s = agg.at(3);
  EXPECT_EQ(s.clicks, 1);
  EXPECT_EQ(s.play_count, 2);
  EXPECT_DOUBLE_EQ(s.play_time_ms, 6000.0);
  EXPECT_FALSE(s.browsed_past);
  EXPECT_TRUE(s.HasActiveInteraction());
  EXPECT_EQ(s.first_interaction, 2);
  EXPECT_EQ(s.last_interaction, 10);
}

TEST(IndicatorsTest, PlayFractionNeedsCollection) {
  VideoCollection collection;
  collection.SetTopicNames({"t"});
  Video v;
  const VideoId vid = collection.AddVideo(v);
  NewsStory story;
  story.video = vid;
  const StoryId sid = collection.AddStory(story);
  Shot shot;
  shot.story = sid;
  shot.video = vid;
  shot.duration_ms = 10000;
  shot.concepts = {true};
  shot.external_id = "x";
  const ShotId id = collection.AddShot(shot);

  std::vector<InteractionEvent> events = {
      MakeEvent(1, EventType::kPlayStart, id),
      MakeEvent(2, EventType::kPlayStop, id, 4000.0),
  };
  const auto with = AggregateIndicators(events, &collection);
  EXPECT_DOUBLE_EQ(with.at(id).play_fraction, 0.4);
  const auto without = AggregateIndicators(events, nullptr);
  EXPECT_DOUBLE_EQ(without.at(id).play_fraction, 0.0);
}

TEST(IndicatorsTest, PlayFractionCapsAtOne) {
  VideoCollection collection;
  Video v;
  const VideoId vid = collection.AddVideo(v);
  NewsStory story;
  story.video = vid;
  const StoryId sid = collection.AddStory(story);
  Shot shot;
  shot.story = sid;
  shot.video = vid;
  shot.duration_ms = 1000;
  shot.external_id = "x";
  const ShotId id = collection.AddShot(shot);
  std::vector<InteractionEvent> events = {
      MakeEvent(1, EventType::kPlayStop, id, 5000.0),
  };
  EXPECT_DOUBLE_EQ(
      AggregateIndicators(events, &collection).at(id).play_fraction, 1.0);
}

TEST(IndicatorsTest, TooltipSeekMetadataCounted) {
  std::vector<InteractionEvent> events = {
      MakeEvent(1, EventType::kTooltipHover, 5, 1200.0),
      MakeEvent(2, EventType::kSeek, 5, 3000.0),
      MakeEvent(3, EventType::kSeek, 5, 500.0),
      MakeEvent(4, EventType::kHighlightMetadata, 5),
  };
  const auto agg = AggregateIndicators(events, nullptr);
  const ShotIndicators& s = agg.at(5);
  EXPECT_EQ(s.tooltip_hovers, 1);
  EXPECT_DOUBLE_EQ(s.tooltip_ms, 1200.0);
  EXPECT_EQ(s.seeks, 2);
  EXPECT_EQ(s.metadata_highlights, 1);
}

TEST(IndicatorsTest, ExplicitJudgmentLatestWins) {
  std::vector<InteractionEvent> events = {
      MakeEvent(1, EventType::kMarkRelevant, 2),
      MakeEvent(2, EventType::kMarkNotRelevant, 2),
  };
  EXPECT_EQ(AggregateIndicators(events, nullptr).at(2).explicit_judgment,
            -1);
  std::vector<InteractionEvent> reversed = {
      MakeEvent(1, EventType::kMarkNotRelevant, 2),
      MakeEvent(2, EventType::kMarkRelevant, 2),
  };
  EXPECT_EQ(AggregateIndicators(reversed, nullptr).at(2).explicit_judgment,
            1);
}

TEST(IndicatorsTest, DwellMeasuredUntilNextNavigation) {
  std::vector<InteractionEvent> events = {
      MakeEvent(100, EventType::kClickKeyframe, 1),
      MakeEvent(5100, EventType::kQuerySubmit),  // navigates away
  };
  EXPECT_DOUBLE_EQ(AggregateIndicators(events, nullptr).at(1).dwell_ms,
                   5000.0);
}

TEST(IndicatorsTest, DwellClosedByClickOnOtherShot) {
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kClickKeyframe, 1),
      MakeEvent(3000, EventType::kClickKeyframe, 2),
      MakeEvent(4000, EventType::kSessionEnd),
  };
  const auto agg = AggregateIndicators(events, nullptr);
  EXPECT_DOUBLE_EQ(agg.at(1).dwell_ms, 3000.0);
  EXPECT_DOUBLE_EQ(agg.at(2).dwell_ms, 1000.0);
}

TEST(IndicatorsTest, DwellClosedAtStreamEndWithoutNavigation) {
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kClickKeyframe, 1),
      MakeEvent(2000, EventType::kPlayStart, 1),
  };
  EXPECT_DOUBLE_EQ(AggregateIndicators(events, nullptr).at(1).dwell_ms,
                   2000.0);
}

TEST(IndicatorsTest, UnsortedInputIsSortedFirst) {
  std::vector<InteractionEvent> events = {
      MakeEvent(5100, EventType::kQuerySubmit),
      MakeEvent(100, EventType::kClickKeyframe, 1),
  };
  EXPECT_DOUBLE_EQ(AggregateIndicators(events, nullptr).at(1).dwell_ms,
                   5000.0);
}

TEST(IndicatorsTest, VisualExampleCountsAndClosesDwell) {
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kClickKeyframe, 1),
      MakeEvent(3000, EventType::kVisualExample, 1),
      MakeEvent(9000, EventType::kSessionEnd),
  };
  const auto agg = AggregateIndicators(events, nullptr);
  const ShotIndicators& s = agg.at(1);
  EXPECT_EQ(s.used_as_example, 1);
  EXPECT_TRUE(s.HasActiveInteraction());
  // The example submission navigated away: dwell stops at 3000, not 9000.
  EXPECT_DOUBLE_EQ(s.dwell_ms, 3000.0);
}

TEST(IndicatorsTest, VisualExampleAloneIsNotBrowsedPast) {
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kResultDisplayed, 2, 0.0),
      MakeEvent(1, EventType::kVisualExample, 2),
  };
  EXPECT_FALSE(AggregateIndicators(events, nullptr).at(2).browsed_past);
}

TEST(IndicatorsTest, BrowsedPastOnlyWithoutInteraction) {
  std::vector<InteractionEvent> events = {
      MakeEvent(1, EventType::kResultDisplayed, 1, 0.0),
      MakeEvent(2, EventType::kResultDisplayed, 2, 1.0),
      MakeEvent(3, EventType::kClickKeyframe, 2),
  };
  const auto agg = AggregateIndicators(events, nullptr);
  EXPECT_TRUE(agg.at(1).browsed_past);
  EXPECT_FALSE(agg.at(2).browsed_past);
}

}  // namespace
}  // namespace ivr
