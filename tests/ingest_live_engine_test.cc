// LiveEngine: the generational index. Publish visibility, snapshot
// pinning, replay, compaction, cache sharing across generations, and
// salvage accounting.

#include "ivr/ingest/live_engine.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/cache/result_cache.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/segment.h"
#include "ivr/service/session_manager.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

GeneratedCollection MakeBase() {
  GeneratorOptions options;
  options.seed = 2008;
  options.num_videos = 6;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

GeneratedCollection MakeStream(uint64_t seed = 99) {
  GeneratorOptions options;
  options.seed = seed;
  options.num_videos = 4;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

/// A fresh, empty ingest directory under the test tmpdir.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  if (FileExists(dir)) {
    const auto entries = ListDirectory(dir);
    if (entries.ok()) {
      for (const std::string& entry : *entries) {
        (void)RemoveFile(dir + "/" + entry);
      }
    }
  }
  return dir;
}

std::unique_ptr<LiveEngine> OpenLive(const std::string& dir,
                                     IngestOptions options = {}) {
  options.dir = dir;
  auto live = LiveEngine::Open(MakeBase(), std::move(options));
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  return std::move(live).value();
}

Query TopicQuery(const EngineSnapshot& snapshot, size_t i = 0) {
  const SearchTopic& topic = snapshot.topics->topics.at(i);
  Query query;
  query.text = topic.title;
  query.examples = topic.examples;
  return query;
}

std::string Ranking(const EngineSnapshot& snapshot, const Query& query,
                    size_t k = 10) {
  const ResultList list = snapshot.engine->Search(query, k);
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    out += StrFormat("%u:%.17g ", list.at(i).shot, list.at(i).score);
  }
  return out;
}

TEST(LiveEngineTest, FreshDirectoryServesTheBaseAtGenerationZero) {
  auto live = OpenLive(FreshDir("live_fresh"));
  const auto snapshot = live->Acquire();
  EXPECT_EQ(snapshot->generation, 0u);
  EXPECT_EQ(snapshot->num_shots(), MakeBase().collection.num_shots());
  EXPECT_EQ(live->Stats().segments, 0u);
}

TEST(LiveEngineTest, PendingIsInvisibleUntilPublish) {
  auto live = OpenLive(FreshDir("live_pending"));
  const GeneratedCollection stream = MakeStream();
  const size_t base_shots = live->Acquire()->num_shots();
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
  EXPECT_EQ(live->Acquire()->num_shots(), base_shots);
  EXPECT_GT(live->Stats().pending_shots, 0u);

  const Result<uint64_t> published = live->Publish();
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 1u);
  EXPECT_GT(live->Acquire()->num_shots(), base_shots);
  EXPECT_EQ(live->Stats().pending_shots, 0u);
  EXPECT_EQ(live->Stats().segments, 1u);
}

TEST(LiveEngineTest, PublishWithNothingPendingIsANoOp) {
  auto live = OpenLive(FreshDir("live_noop"));
  const Result<uint64_t> published = live->Publish();
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 0u);
  EXPECT_EQ(live->Stats().publishes, 0u);
}

TEST(LiveEngineTest, ReadersPinnedToASnapshotSurvivePublishes) {
  auto live = OpenLive(FreshDir("live_pin"));
  const auto old_snapshot = live->Acquire();
  const Query query = TopicQuery(*old_snapshot);
  const std::string before = Ranking(*old_snapshot, query);

  const GeneratedCollection stream = MakeStream();
  for (VideoId v = 0; v < 2; ++v) {
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, v).ok());
  }
  ASSERT_TRUE(live->Publish().ok());

  // The pinned snapshot still answers bit-identically from generation 0;
  // a fresh acquire sees generation 1.
  EXPECT_EQ(Ranking(*old_snapshot, query), before);
  EXPECT_EQ(old_snapshot->generation, 0u);
  EXPECT_EQ(live->Acquire()->generation, 1u);
}

TEST(LiveEngineTest, ReopenReplaysToTheSameGenerationAndRankings) {
  const std::string dir = FreshDir("live_reopen");
  const GeneratedCollection stream = MakeStream();
  std::string expected;
  Query query;
  {
    auto live = OpenLive(dir);
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
    ASSERT_TRUE(live->Publish().ok());
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 1).ok());
    ASSERT_TRUE(live->Publish().ok());
    const auto snapshot = live->Acquire();
    query = TopicQuery(*snapshot);
    expected = Ranking(*snapshot, query);
    EXPECT_EQ(snapshot->generation, 2u);
  }
  auto live = OpenLive(dir);
  const auto snapshot = live->Acquire();
  EXPECT_EQ(snapshot->generation, 2u);
  EXPECT_EQ(live->Stats().segments, 2u);
  EXPECT_EQ(Ranking(*snapshot, query), expected);
}

TEST(LiveEngineTest, MergeCompactsWithoutChangingServing) {
  const std::string dir = FreshDir("live_merge");
  auto live = OpenLive(dir);
  const GeneratedCollection stream = MakeStream();
  for (VideoId v = 0; v < 3; ++v) {
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, v).ok());
    ASSERT_TRUE(live->Publish().ok());
  }
  const auto before_snapshot = live->Acquire();
  const Query query = TopicQuery(*before_snapshot);
  const std::string before = Ranking(*before_snapshot, query);
  ASSERT_EQ(live->Stats().segments, 3u);

  ASSERT_TRUE(live->Merge().ok());
  EXPECT_EQ(live->Stats().segments, 1u);
  EXPECT_EQ(live->Stats().merges, 1u);
  // Serving is untouched: same generation, same rankings.
  const auto after_snapshot = live->Acquire();
  EXPECT_EQ(after_snapshot->generation, before_snapshot->generation);
  EXPECT_EQ(Ranking(*after_snapshot, query), before);

  // The compacted file is the only segment on disk, and a reopen replays
  // it bit-identically.
  size_t seg_files = 0;
  const std::vector<std::string> on_disk = ListDirectory(dir).value();
  for (const std::string& name : on_disk) {
    if (EndsWith(name, ".seg")) ++seg_files;
  }
  EXPECT_EQ(seg_files, 1u);
  auto reopened = OpenLive(dir);
  EXPECT_EQ(Ranking(*reopened->Acquire(), query), before);
}

TEST(LiveEngineTest, MergeBelowTwoSegmentsIsANoOp) {
  auto live = OpenLive(FreshDir("live_merge_noop"));
  ASSERT_TRUE(live->Merge().ok());
  EXPECT_EQ(live->Stats().merges, 0u);
}

TEST(LiveEngineTest, AutoMergeTriggersAtThreshold) {
  IngestOptions options;
  options.merge_after_segments = 2;
  auto live = OpenLive(FreshDir("live_automerge"), options);
  const GeneratedCollection stream = MakeStream();
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
  ASSERT_TRUE(live->Publish().ok());
  EXPECT_EQ(live->Stats().segments, 1u);
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 1).ok());
  ASSERT_TRUE(live->Publish().ok());
  // Inline (foreground) merge ran as part of the second publish.
  EXPECT_EQ(live->Stats().segments, 1u);
  EXPECT_EQ(live->Stats().merges, 1u);
}

TEST(LiveEngineTest, SharedCacheNeverCrossesGenerations) {
  ResultCacheOptions cache_options;
  cache_options.max_bytes = 4 << 20;
  auto cache = std::make_shared<ResultCache>(cache_options);
  IngestOptions options;
  options.cache = cache;
  auto live = OpenLive(FreshDir("live_cache"), options);

  const auto gen0 = live->Acquire();
  const Query query = TopicQuery(*gen0);
  const std::string cold = Ranking(*gen0, query);
  const std::string warm = Ranking(*gen0, query);  // cache hit
  EXPECT_EQ(cold, warm);

  const GeneratedCollection stream = MakeStream();
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
  ASSERT_TRUE(live->Publish().ok());
  const auto gen1 = live->Acquire();

  // The new generation's rankings must come from the new index, not the
  // old generation's cached entries — and must equal an uncached engine
  // over the same data.
  const std::string fresh = Ranking(*gen1, query);
  IngestOptions uncached_options;
  uncached_options.dir = live->options().dir;
  auto uncached = LiveEngine::Open(MakeBase(), std::move(uncached_options));
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(Ranking(*(*uncached)->Acquire(), query), fresh);

  // The pinned old snapshot still serves generation 0 bit-identically
  // through the shared cache (epoch-prefixed keys).
  EXPECT_EQ(Ranking(*gen0, query), cold);
}

TEST(LiveEngineTest, SalvageCountsOrphanAndTornSegmentsExactlyOnce) {
  const std::string dir = FreshDir("live_salvage");
  const GeneratedCollection stream = MakeStream();
  std::string gen1_ranking;
  Query query;
  {
    auto live = OpenLive(dir);
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
    ASSERT_TRUE(live->Publish().ok());
    const auto snapshot = live->Acquire();
    query = TopicQuery(*snapshot);
    gen1_ranking = Ranking(*snapshot, query);
    ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 1).ok());
    ASSERT_TRUE(live->Publish().ok());
  }
  // Tear generation 2's segment and plant an orphan: the reopen must fall
  // back to generation 1, count one torn and one orphan segment.
  const std::string seg2 = dir + "/" + LiveEngine::SegmentName(2);
  const std::string bytes = ReadFileToString(seg2).value();
  ASSERT_TRUE(WriteStringToFile(seg2, bytes.substr(0, bytes.size() / 2)).ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/orphan.seg", "not a segment").ok());

  auto live = OpenLive(dir);
  const auto snapshot = live->Acquire();
  EXPECT_EQ(snapshot->generation, 1u);
  EXPECT_EQ(Ranking(*snapshot, query), gen1_ranking);
  const IngestStats stats = live->Stats();
  EXPECT_EQ(stats.torn_segments_dropped, 1u);
  EXPECT_EQ(stats.orphan_segments_dropped, 1u);
  EXPECT_EQ(stats.torn_manifest_chunks, 0u);
  EXPECT_TRUE(live->Health().degraded());

  // The NEXT generation id stays monotonic despite the fallback: a new
  // publish must not collide with the torn generation 2.
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 2).ok());
  const Result<uint64_t> published = live->Publish();
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 3u);
}

TEST(LiveEngineTest, FailedPublishKeepsPendingForRetry) {
  auto live = OpenLive(FreshDir("live_retry"));
  const GeneratedCollection stream = MakeStream();
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
  {
    ScopedFaultInjection faults("ingest.publish:1.0", 1);
    EXPECT_FALSE(live->Publish().ok());
  }
  EXPECT_EQ(live->Stats().publish_failures, 1u);
  EXPECT_GT(live->Stats().pending_shots, 0u);
  EXPECT_EQ(live->Acquire()->generation, 0u);

  // Retry without faults publishes the SAME delta into generation 1.
  const Result<uint64_t> published = live->Publish();
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 1u);
  EXPECT_EQ(live->Stats().pending_shots, 0u);
}

TEST(LiveEngineTest, ManifestFaultAbortsPublishBeforeTheSwap) {
  const std::string dir = FreshDir("live_manifest_fault");
  auto live = OpenLive(dir);
  const GeneratedCollection stream = MakeStream();
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
  {
    ScopedFaultInjection faults("ingest.manifest:1.0", 1);
    EXPECT_FALSE(live->Publish().ok());
  }
  // Not committed: still generation 0, and the reopen agrees (the segment
  // file that did land is an orphan).
  EXPECT_EQ(live->Acquire()->generation, 0u);
  auto reopened = OpenLive(dir);
  EXPECT_EQ(reopened->Acquire()->generation, 0u);
  EXPECT_EQ(reopened->Stats().orphan_segments_dropped, 1u);
}

TEST(LiveEngineTest, SessionManagerStraddlesPublishes) {
  auto live = OpenLive(FreshDir("live_sessions"));
  LiveEngine* live_ptr = live.get();
  SessionManagerOptions manager_options;
  SessionManager manager(
      [live_ptr] { return live_ptr->Acquire()->adaptive; },
      manager_options);
  ASSERT_TRUE(manager.BeginSession("s1", "u1").ok());

  Query query;
  query.text = live->Acquire()->topics->topics.at(0).title;
  const Result<ResultList> before = manager.Search("s1", query, 5);
  ASSERT_TRUE(before.ok());

  const GeneratedCollection stream = MakeStream();
  ASSERT_TRUE(live->AppendVideoFrom(stream.collection, 0).ok());
  ASSERT_TRUE(live->Publish().ok());

  // The SAME session keeps working across the publish; each operation is
  // pinned to the generation current at its start.
  const Result<ResultList> after = manager.Search("s1", query, 5);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(manager.EndSession("s1").ok());
}

}  // namespace
}  // namespace ivr
