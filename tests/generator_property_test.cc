// Property suite for the collection generator across a parameter grid:
// the structural invariants every downstream component relies on must
// hold at every point of the configuration space.

#include <set>

#include <gtest/gtest.h>

#include "ivr/video/generator.h"

namespace ivr {
namespace {

struct GridPoint {
  uint64_t seed;
  size_t num_topics;
  double wer;
  double leak;
  double off_topic;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GridPoint> {
 protected:
  GeneratedCollection Generate() const {
    const GridPoint& p = GetParam();
    GeneratorOptions options;
    options.seed = p.seed;
    options.num_topics = p.num_topics;
    options.num_videos = 6;
    options.asr_word_error_rate = p.wer;
    options.topic_word_leak_prob = p.leak;
    options.off_topic_shot_prob = p.off_topic;
    return GenerateCollection(options).value();
  }
};

TEST_P(GeneratorPropertyTest, IdsAreDenseAndCrossLinked) {
  const GeneratedCollection g = Generate();
  const VideoCollection& c = g.collection;
  for (size_t i = 0; i < c.num_videos(); ++i) {
    EXPECT_EQ(c.videos()[i].id, static_cast<VideoId>(i));
  }
  for (size_t i = 0; i < c.num_stories(); ++i) {
    const NewsStory& s = c.stories()[i];
    EXPECT_EQ(s.id, static_cast<StoryId>(i));
    EXPECT_LT(s.video, c.num_videos());
    EXPECT_LT(s.topic, g.options.num_topics);
  }
  for (size_t i = 0; i < c.num_shots(); ++i) {
    const Shot& s = c.shots()[i];
    EXPECT_EQ(s.id, static_cast<ShotId>(i));
    EXPECT_LT(s.story, c.num_stories());
    EXPECT_EQ(c.story(s.story).value()->video, s.video);
  }
}

TEST_P(GeneratorPropertyTest, ShotsWithinStoryAreContiguousInTime) {
  const GeneratedCollection g = Generate();
  for (const Video& video : g.collection.videos()) {
    TimeMs cursor = 0;
    for (StoryId sid : video.stories) {
      const NewsStory* story = g.collection.story(sid).value();
      for (ShotId shot_id : story->shots) {
        const Shot* shot = g.collection.shot(shot_id).value();
        EXPECT_EQ(shot->start_ms, cursor);
        EXPECT_GT(shot->duration_ms, 0);
        cursor += shot->duration_ms;
      }
    }
  }
}

TEST_P(GeneratorPropertyTest, ConceptVectorsWellFormed) {
  const GeneratedCollection g = Generate();
  for (const Shot& shot : g.collection.shots()) {
    ASSERT_EQ(shot.concepts.size(), GetParam().num_topics);
    EXPECT_TRUE(shot.concepts[shot.primary_topic]);
    size_t set_bits = 0;
    for (bool b : shot.concepts) {
      if (b) ++set_bits;
    }
    EXPECT_LE(set_bits, 2u);  // primary + at most one secondary
  }
}

TEST_P(GeneratorPropertyTest, KeyframesAreNormalized) {
  const GeneratedCollection g = Generate();
  for (const Shot& shot : g.collection.shots()) {
    double total = 0.0;
    for (size_t b = 0; b < shot.keyframe.size(); ++b) {
      EXPECT_GE(shot.keyframe[b], 0.0);
      total += shot.keyframe[b];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(GeneratorPropertyTest, QrelsConsistentWithGroundTruth) {
  const GeneratedCollection g = Generate();
  for (const SearchTopic& topic : g.topics.topics) {
    EXPECT_GT(g.qrels.NumRelevant(topic.id), 0u);
    for (ShotId shot_id : g.qrels.RelevantShots(topic.id)) {
      const Shot* shot = g.collection.shot(shot_id).value();
      EXPECT_TRUE(shot->concepts[topic.target_topic]);
    }
  }
}

TEST_P(GeneratorPropertyTest, ExternalIdsUniqueAndTranscriptsTabFree) {
  const GeneratedCollection g = Generate();
  std::set<std::string> ids;
  for (const Shot& shot : g.collection.shots()) {
    EXPECT_TRUE(ids.insert(shot.external_id).second);
    EXPECT_EQ(shot.asr_transcript.find('\t'), std::string::npos);
    EXPECT_EQ(shot.true_transcript.find('\t'), std::string::npos);
    EXPECT_FALSE(shot.true_transcript.empty());
  }
}

TEST_P(GeneratorPropertyTest, ObservedWerTracksConfiguredWer) {
  const GeneratedCollection g = Generate();
  size_t kept = 0;
  size_t total = 0;
  for (const Shot& shot : g.collection.shots()) {
    // Count ground-truth words surviving verbatim into the ASR output
    // (multiset intersection would be exact; per-word containment is a
    // good cheap proxy at these vocabulary sizes).
    std::set<std::string> asr_words;
    size_t start = 0;
    const std::string& asr = shot.asr_transcript;
    while (start < asr.size()) {
      size_t end = asr.find(' ', start);
      if (end == std::string::npos) end = asr.size();
      asr_words.insert(asr.substr(start, end - start));
      start = end + 1;
    }
    start = 0;
    const std::string& truth = shot.true_transcript;
    while (start < truth.size()) {
      size_t end = truth.find(' ', start);
      if (end == std::string::npos) end = truth.size();
      ++total;
      if (asr_words.count(truth.substr(start, end - start)) > 0) ++kept;
      start = end + 1;
    }
  }
  const double survival =
      static_cast<double>(kept) / static_cast<double>(total);
  // Words survive unless corrupted (subs/deletes remove ~80% of WER hits;
  // duplicates inflate survival slightly), so survival should be well
  // above 1 - wer and at most ~1.
  EXPECT_GE(survival, 1.0 - GetParam().wer - 0.05);
  EXPECT_LE(survival, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorPropertyTest,
    ::testing::Values(GridPoint{1, 2, 0.0, 0.0, 0.0},
                      GridPoint{2, 4, 0.15, 0.2, 0.1},
                      GridPoint{3, 8, 0.3, 0.3, 0.1},
                      GridPoint{4, 12, 0.45, 0.4, 0.2},
                      GridPoint{5, 1, 0.3, 0.5, 0.5},
                      GridPoint{6, 20, 0.6, 0.1, 0.0},
                      GridPoint{7, 4, 1.0, 0.0, 1.0}));

}  // namespace
}  // namespace ivr
