#include "ivr/core/string_util.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitJoinTest, RoundTrips) {
  const std::string original = "x\ty z";
  EXPECT_EQ(Join(Split(original, '\t'), "\t"), original);
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nospace"), "nospace");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123!"), "hello 123!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("shot12", "shot"));
  EXPECT_FALSE(StartsWith("sho", "shot"));
  EXPECT_TRUE(EndsWith("video.mp4", ".mp4"));
  EXPECT_FALSE(EndsWith("mp4", "video.mp4"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt("  13 ").value(), 13);
  EXPECT_EQ(ParseInt("0").value(), 0);
}

TEST(ParseIntTest, InvalidInputs) {
  EXPECT_TRUE(ParseInt("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt("12x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt("x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt("1.5").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseInt("99999999999999999999999").status().IsOutOfRange());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 7 ").value(), 7.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_TRUE(ParseDouble("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("3.5abc").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("abc").status().IsInvalidArgument());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_arg(5000, 'a');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("hello world_42"), "hello world_42");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\rc\td"), "a\\nb\\rc\\td");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string("a\x00z", 3)), "a\\u0000z");
}

TEST(JsonEscapeTest, HighBitBytesPassThroughUnchanged) {
  // UTF-8 multi-byte sequences (and arbitrary binary >= 0x80) must not be
  // mangled into \u escapes computed from a SIGNED char — the historical
  // duplication hazard this shared helper removes.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x82\xac";
  EXPECT_EQ(JsonEscape(utf8), utf8);
  const std::string high(1, static_cast<char>(0xff));
  EXPECT_EQ(JsonEscape(high), high);
}

}  // namespace
}  // namespace ivr
