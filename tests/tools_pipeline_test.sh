#!/bin/sh
# End-to-end smoke test of the CLI tools: generate -> search -> evaluate
# -> simulate -> replay -> evaluate-the-replay, with the observability
# flags (--stats-json / --trace) threaded through the pipeline. Run by
# CTest with the build directory as the first argument.
set -e

BUILD_DIR="$1"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

TOOLS="$BUILD_DIR/tools"

# Validates a --stats-json output: parses as JSON (when python3 exists)
# and carries the v1 schema marker plus all four sections.
check_stats() {
  test -s "$1"
  grep -q '"schema_version": 1' "$1"
  grep -q '"counters"' "$1"
  grep -q '"gauges"' "$1"
  grep -q '"histograms"' "$1"
  grep -q '"faults"' "$1"
  if command -v python3 > /dev/null 2>&1; then
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$1"
  fi
}

# Validates a --trace output: a schema-versioned JSONL header whose every
# line parses as JSON (when python3 exists).
check_trace() {
  test -s "$1"
  head -1 "$1" | grep -q '"schema_version": 1'
  head -1 "$1" | grep -q '"type": "ivr.trace"'
  if command -v python3 > /dev/null 2>&1; then
    python3 -c "
import json, sys
for line in open(sys.argv[1]):
    json.loads(line)
" "$1"
  fi
}

# Extracts an integer metric value from a stats JSON file.
stat_value() {
  sed -n 's/^.*"'"$2"'": \([0-9-][0-9]*\).*$/\1/p' "$1" | head -1
}

"$TOOLS/ivr_generate" --out "$WORK_DIR/c.ivr" --videos 10 --topics 6 \
    --seed 5 --qrels "$WORK_DIR/qrels.txt" \
    --stats-json "$WORK_DIR/stats_gen.json" > "$WORK_DIR/gen.log"
grep -q "wrote" "$WORK_DIR/gen.log"
test -s "$WORK_DIR/c.ivr"
test -s "$WORK_DIR/qrels.txt"
check_stats "$WORK_DIR/stats_gen.json"

"$TOOLS/ivr_search" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25.txt" \
    --stats-json "$WORK_DIR/stats_search.json" \
    --trace "$WORK_DIR/trace_search.jsonl" > /dev/null
test -s "$WORK_DIR/run_bm25.txt"
check_stats "$WORK_DIR/stats_search.json"
check_trace "$WORK_DIR/trace_search.jsonl"
# The batch run answered one query per topic; the engine counter agrees.
test "$(stat_value "$WORK_DIR/stats_search.json" engine.queries)" -eq 6

"$TOOLS/ivr_search" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_tfidf.txt" --scorer tfidf > /dev/null

# Evaluation against the embedded qrels and the exported qrels must agree.
# (--stats-json goes to a side file; stdout stays comparable.)
"$TOOLS/ivr_eval" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25.txt" \
    --stats-json "$WORK_DIR/stats_eval.json" \
    2> "$WORK_DIR/eval_stderr.txt" > "$WORK_DIR/eval_embedded.txt"
check_stats "$WORK_DIR/stats_eval.json"
grep -q "observability summary" "$WORK_DIR/eval_stderr.txt"
"$TOOLS/ivr_eval" --qrels "$WORK_DIR/qrels.txt" \
    --run "$WORK_DIR/run_bm25.txt" > "$WORK_DIR/eval_exported.txt"
cmp "$WORK_DIR/eval_embedded.txt" "$WORK_DIR/eval_exported.txt"
grep -q "mean" "$WORK_DIR/eval_embedded.txt"

# Comparison mode prints significance tests.
"$TOOLS/ivr_eval" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25.txt" --run2 "$WORK_DIR/run_tfidf.txt" \
    | grep -q "paired t-test"

# Simulate users, replay their logs adaptively, and evaluate the result.
"$TOOLS/ivr_simulate" --collection "$WORK_DIR/c.ivr" \
    --log "$WORK_DIR/logs.tsv" --sessions-per-topic 1 \
    --stats-json "$WORK_DIR/stats_sim.json" \
    --trace "$WORK_DIR/trace_sim.jsonl" > /dev/null
test -s "$WORK_DIR/logs.tsv"
check_stats "$WORK_DIR/stats_sim.json"
check_trace "$WORK_DIR/trace_sim.jsonl"

"$TOOLS/ivr_replay" --collection "$WORK_DIR/c.ivr" \
    --log "$WORK_DIR/logs.tsv" --run "$WORK_DIR/run_replay.txt" \
    --stats-json "$WORK_DIR/stats_replay.json" > /dev/null
test -s "$WORK_DIR/run_replay.txt"
check_stats "$WORK_DIR/stats_replay.json"

"$TOOLS/ivr_eval" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_replay.txt" | grep -q "mean"

# Determinism: regenerating with the same seed is byte-identical.
"$TOOLS/ivr_generate" --out "$WORK_DIR/c2.ivr" --videos 10 --topics 6 \
    --seed 5 > /dev/null
cmp "$WORK_DIR/c.ivr" "$WORK_DIR/c2.ivr"

# Service layer with observability: a --check run (concurrent + sequential
# verification) must end with every session closed — active gauge back to
# zero and no evictions (the --check contract forbids eviction pressure) —
# while the opened counter covers both the concurrent run and the
# sequential reference (8 sessions each).
"$TOOLS/ivr_serve_sim" --collection "$WORK_DIR/c.ivr" --sessions 8 \
    --threads 2 --check \
    --stats-json "$WORK_DIR/stats_serve.json" \
    --trace "$WORK_DIR/trace_serve.jsonl" \
    2> "$WORK_DIR/serve_stderr.txt" > "$WORK_DIR/serve.log"
grep -q "bit-identical" "$WORK_DIR/serve.log"
check_stats "$WORK_DIR/stats_serve.json"
check_trace "$WORK_DIR/trace_serve.jsonl"
grep -q "observability summary" "$WORK_DIR/serve_stderr.txt"
test "$(stat_value "$WORK_DIR/stats_serve.json" service.sessions_active)" \
    -eq 0
test "$(stat_value "$WORK_DIR/stats_serve.json" service.sessions_evicted)" \
    -eq 0
test "$(stat_value "$WORK_DIR/stats_serve.json" service.sessions_opened)" \
    -eq 16

# Under capacity pressure the eviction counter must move. Four workers
# open their sessions up front (think time keeps all four alive at once on
# any core count), so with room for two the extra opens must evict.
"$TOOLS/ivr_serve_sim" --collection "$WORK_DIR/c.ivr" --sessions 4 \
    --threads 4 --think 5 --max-sessions 2 \
    --stats-json "$WORK_DIR/stats_evict.json" > /dev/null 2>&1
check_stats "$WORK_DIR/stats_evict.json"
test "$(stat_value "$WORK_DIR/stats_evict.json" service.sessions_evicted)" \
    -gt 0

# Result cache: every tool accepts --cache-mb, and a cached run must be
# byte-identical to the uncached artefact written above, with the cache
# section of the stats JSON populated.
"$TOOLS/ivr_search" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25_cached.txt" --cache-mb 16 \
    --stats-json "$WORK_DIR/stats_search_cached.json" > /dev/null
cmp "$WORK_DIR/run_bm25.txt" "$WORK_DIR/run_bm25_cached.txt"
check_stats "$WORK_DIR/stats_search_cached.json"
grep -q '"cache"' "$WORK_DIR/stats_search_cached.json"
test "$(stat_value "$WORK_DIR/stats_search_cached.json" cache.insertions)" \
    -gt 0

"$TOOLS/ivr_simulate" --collection "$WORK_DIR/c.ivr" \
    --log "$WORK_DIR/logs_cached.tsv" --sessions-per-topic 1 \
    --cache-mb 16 \
    --stats-json "$WORK_DIR/stats_sim_cached.json" > /dev/null
cmp "$WORK_DIR/logs.tsv" "$WORK_DIR/logs_cached.tsv"
check_stats "$WORK_DIR/stats_sim_cached.json"
test "$(stat_value "$WORK_DIR/stats_sim_cached.json" cache.insertions)" \
    -gt 0

"$TOOLS/ivr_replay" --collection "$WORK_DIR/c.ivr" \
    --log "$WORK_DIR/logs.tsv" --run "$WORK_DIR/run_replay_cached.txt" \
    --cache-mb 16 \
    --stats-json "$WORK_DIR/stats_replay_cached.json" > /dev/null
cmp "$WORK_DIR/run_replay.txt" "$WORK_DIR/run_replay_cached.txt"
check_stats "$WORK_DIR/stats_replay_cached.json"
test "$(stat_value "$WORK_DIR/stats_replay_cached.json" cache.insertions)" \
    -gt 0

# The service path shares cached base rankings across sessions: the
# --check contract (concurrent == sequential, bit for bit) must hold with
# a cache attached, and the repeated topics must actually hit it.
"$TOOLS/ivr_serve_sim" --collection "$WORK_DIR/c.ivr" --sessions 8 \
    --threads 2 --check --cache-mb 16 \
    --stats-json "$WORK_DIR/stats_serve_cached.json" \
    > "$WORK_DIR/serve_cached.log" 2> /dev/null
grep -q "bit-identical" "$WORK_DIR/serve_cached.log"
check_stats "$WORK_DIR/stats_serve_cached.json"
test "$(stat_value "$WORK_DIR/stats_serve_cached.json" cache.hits)" -gt 0

# ivr_eval accepts the flag for pipeline uniformity but notes it is
# inert; stdout must be unchanged.
"$TOOLS/ivr_eval" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25.txt" --cache-mb 16 \
    2> "$WORK_DIR/eval_cached_stderr.txt" \
    > "$WORK_DIR/eval_cached.txt"
cmp "$WORK_DIR/eval_embedded.txt" "$WORK_DIR/eval_cached.txt"
grep -q "no effect" "$WORK_DIR/eval_cached_stderr.txt"

# Ad-hoc query mode prints ranked shots.
QUERY_WORD="$(sed -n 's/^.*\t\([a-z]*\) [a-z]*bo day.*$/\1/p' \
    "$WORK_DIR/c.ivr" | head -1)"
if [ -n "$QUERY_WORD" ]; then
  "$TOOLS/ivr_search" --collection "$WORK_DIR/c.ivr" \
      --query "$QUERY_WORD" --k 5 | grep -q "results for"
fi

# HTTP front-end: serve the collection on an ephemeral port, drive it with
# the concurrent client (querying real collection vocabulary), and check
# that the /statsz snapshot speaks the same v1 schema as --stats-json.
sed -n 's/^.*\t\([a-z]*\) [a-z]*bo day.*$/\1/p' "$WORK_DIR/c.ivr" \
    | head -5 > "$WORK_DIR/query_words.txt"
test -s "$WORK_DIR/query_words.txt"
"$TOOLS/ivr_httpd" --collection "$WORK_DIR/c.ivr" \
    --port-file "$WORK_DIR/port.txt" --threads 2 --cache-mb 16 \
    --stats-json "$WORK_DIR/stats_httpd.json" \
    > "$WORK_DIR/httpd.log" 2> "$WORK_DIR/httpd_stderr.txt" &
HTTPD_PID=$!
for _ in $(seq 1 100); do
  test -s "$WORK_DIR/port.txt" && break
  sleep 0.1
done
test -s "$WORK_DIR/port.txt"
HTTPD_PORT="$(cat "$WORK_DIR/port.txt")"

"$TOOLS/ivr_http_client" --port "$HTTPD_PORT" --sessions 4 --threads 2 \
    --queries 3 --query-file "$WORK_DIR/query_words.txt" \
    --out "$WORK_DIR/http_rankings.txt" \
    --statsz-out "$WORK_DIR/statsz.json" > "$WORK_DIR/client.log"
grep -q "drove 4 sessions" "$WORK_DIR/client.log"
grep -q "0 failures" "$WORK_DIR/client.log"
test -s "$WORK_DIR/http_rankings.txt"
# Real-vocabulary queries must actually rank shots over the wire.
grep -q ":" "$WORK_DIR/http_rankings.txt"
check_stats "$WORK_DIR/statsz.json"
grep -q '"http.requests"' "$WORK_DIR/statsz.json"

# Clean shutdown on SIGTERM: exit 0, final request accounting on stdout,
# and the --stats-json file written on the way out.
kill -TERM "$HTTPD_PID"
HTTPD_RC=0
wait "$HTTPD_PID" || HTTPD_RC=$?
test "$HTTPD_RC" -eq 0
grep -q "served" "$WORK_DIR/httpd.log"
check_stats "$WORK_DIR/stats_httpd.json"

# Streaming ingestion: build a generational index from a stream file,
# verify bit-identity against a direct build, compact it, and reload it.
"$TOOLS/ivr_generate" --out "$WORK_DIR/stream.ivr" --videos 6 --topics 6 \
    --seed 31 > /dev/null
"$TOOLS/ivr_ingest" --dir "$WORK_DIR/ingest" --base "$WORK_DIR/c.ivr" \
    --source "$WORK_DIR/stream.ivr" --publish-every 2 --check \
    --stats-json "$WORK_DIR/stats_ingest.json" > "$WORK_DIR/ingest.log"
grep -q "check ok" "$WORK_DIR/ingest.log"
check_stats "$WORK_DIR/stats_ingest.json"
test "$(stat_value "$WORK_DIR/stats_ingest.json" ingest.publish_failures)" \
    -eq 0
test "$(stat_value "$WORK_DIR/stats_ingest.json" ingest.generation)" -gt 0
"$TOOLS/ivr_ingest" --dir "$WORK_DIR/ingest" --list \
    | grep -q "generation"
# Compaction rewrites the manifest to one segment without changing what
# is served: --check passes again over the merged directory.
"$TOOLS/ivr_ingest" --dir "$WORK_DIR/ingest" --base "$WORK_DIR/c.ivr" \
    --merge --check > "$WORK_DIR/ingest_merged.log"
grep -q "check ok" "$WORK_DIR/ingest_merged.log"
test "$(ls "$WORK_DIR/ingest" | grep -c '\.seg$')" -eq 1

# Live ingestion into a serving httpd: clients query while the ingest
# thread appends and publishes generations; every request must succeed,
# and the SIGTERM drain must exit 0 with no abandoned requests.
"$TOOLS/ivr_httpd" --collection "$WORK_DIR/c.ivr" \
    --ingest-dir "$WORK_DIR/hingest" --ingest-stream "$WORK_DIR/stream.ivr" \
    --ingest-every 2 --ingest-delay-ms 30 --drain-timeout-ms 5000 \
    --port-file "$WORK_DIR/iport.txt" --threads 2 --cache-mb 16 \
    --stats-json "$WORK_DIR/stats_ihttpd.json" \
    > "$WORK_DIR/ihttpd.log" 2> "$WORK_DIR/ihttpd_stderr.txt" &
IHTTPD_PID=$!
for _ in $(seq 1 100); do
  test -s "$WORK_DIR/iport.txt" && break
  sleep 0.1
done
test -s "$WORK_DIR/iport.txt"
IHTTPD_PORT="$(cat "$WORK_DIR/iport.txt")"
"$TOOLS/ivr_http_client" --port "$IHTTPD_PORT" --sessions 4 --threads 2 \
    --queries 4 --query-file "$WORK_DIR/query_words.txt" \
    --statsz-out "$WORK_DIR/istatsz.json" > "$WORK_DIR/iclient.log"
grep -q "0 failures" "$WORK_DIR/iclient.log"
check_stats "$WORK_DIR/istatsz.json"
grep -q '"ingest.generation"' "$WORK_DIR/istatsz.json"
# Wait for the stream to finish publishing, then drain.
for _ in $(seq 1 200); do
  grep -q "ingest: done" "$WORK_DIR/ihttpd_stderr.txt" && break
  sleep 0.1
done
grep -q "ingest: done" "$WORK_DIR/ihttpd_stderr.txt"
kill -TERM "$IHTTPD_PID"
IHTTPD_RC=0
wait "$IHTTPD_PID" || IHTTPD_RC=$?
test "$IHTTPD_RC" -eq 0
check_stats "$WORK_DIR/stats_ihttpd.json"
test "$(stat_value "$WORK_DIR/stats_ihttpd.json" ingest.publish_failures)" \
    -eq 0
test "$(stat_value "$WORK_DIR/stats_ihttpd.json" ingest.generation)" -gt 0
test "$(stat_value "$WORK_DIR/stats_ihttpd.json" http.requests_abandoned)" \
    -eq 0
# The directory the live server grew replays to the same generation in a
# fresh process, bit-identical to a direct build over the same documents.
"$TOOLS/ivr_ingest" --dir "$WORK_DIR/hingest" --base "$WORK_DIR/c.ivr" \
    --check > "$WORK_DIR/ingest_reopen.log"
grep -q "check ok" "$WORK_DIR/ingest_reopen.log"

# Declarative workloads: the serve_smoke workload file must reproduce the
# equivalent ivr_serve_sim invocation bit for bit (one file + one seed =
# one E-S1-style run), and its own concurrent-vs-sequential --check must
# hold.
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
"$TOOLS/ivr_serve_sim" --collection "$WORK_DIR/c.ivr" --sessions 8 \
    --threads 2 --seed 1 \
    --rankings "$WORK_DIR/serve_rankings.txt" > /dev/null 2>&1
test -s "$WORK_DIR/serve_rankings.txt"
"$TOOLS/ivr_workload" --workload "$SRC_DIR/workloads/serve_smoke.json" \
    --collection "$WORK_DIR/c.ivr" --check \
    --rankings "$WORK_DIR/workload_rankings.txt" \
    --report "$WORK_DIR/workload_report.json" \
    --stats-json "$WORK_DIR/stats_workload.json" \
    > "$WORK_DIR/workload.log" 2> /dev/null
grep -q "bit-identical" "$WORK_DIR/workload.log"
cmp "$WORK_DIR/serve_rankings.txt" "$WORK_DIR/workload_rankings.txt"
check_stats "$WORK_DIR/stats_workload.json"
grep -q '"type": "ivr.workload"' "$WORK_DIR/workload_report.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -c "import json, sys; json.load(open(sys.argv[1]))" \
      "$WORK_DIR/workload_report.json"
fi

# A malformed workload is rejected with a path-to-field diagnostic.
printf '{"name": "bad", "phases": []}' > "$WORK_DIR/bad_workload.json"
BAD_RC=0
"$TOOLS/ivr_workload" --workload "$WORK_DIR/bad_workload.json" \
    2> "$WORK_DIR/bad_workload_err.txt" > /dev/null || BAD_RC=$?
test "$BAD_RC" -ne 0
grep -q '\$\.phases' "$WORK_DIR/bad_workload_err.txt"

# The perf canary: clean build passes the committed bounds; an injected
# per-operation slowdown must trip them (non-zero exit + a violation that
# names the phase and the bound).
"$TOOLS/ivr_workload" --workload "$SRC_DIR/workloads/canary.json" \
    --bounds "$SRC_DIR/workloads/canary_bounds.json" \
    --report "$WORK_DIR/canary_report.json" \
    > "$WORK_DIR/canary.log" 2> /dev/null
grep -q "bounds: all phases within" "$WORK_DIR/canary.log"
CANARY_RC=0
IVR_WORKLOAD_CANARY_DELAY_US=300000 "$TOOLS/ivr_workload" \
    --workload "$SRC_DIR/workloads/canary.json" \
    --bounds "$SRC_DIR/workloads/canary_bounds.json" \
    > /dev/null 2> "$WORK_DIR/canary_trip.txt" || CANARY_RC=$?
test "$CANARY_RC" -ne 0
grep -q 'bounds VIOLATION: phase "open_micro"' "$WORK_DIR/canary_trip.txt"
grep -q "max_p99_us" "$WORK_DIR/canary_trip.txt"

# Mixed read/write soak: open-loop readers against the live engine while
# the ingest writer appends and publishes inside the phase — including a
# publish_rate-paced drain phase — checked against the committed
# publish-latency bounds (incremental publish must stay fast under load).
"$TOOLS/ivr_workload" \
    --workload "$SRC_DIR/workloads/mixed_ingest_soak.json" \
    --bounds "$SRC_DIR/workloads/mixed_ingest_soak_bounds.json" \
    --collection "$WORK_DIR/c.ivr" --ingest-dir "$WORK_DIR/wl_ingest" \
    > "$WORK_DIR/soak.log" 2> /dev/null
grep -q "appends [1-9]" "$WORK_DIR/soak.log"
grep -q "publishes [1-9]" "$WORK_DIR/soak.log"
grep -q "bounds: all phases within" "$WORK_DIR/soak.log"

# The http target drives the same phases through ivr_httpd's v1 API with
# the --port override supplying the ephemeral port.
"$TOOLS/ivr_httpd" --collection "$WORK_DIR/c.ivr" \
    --port-file "$WORK_DIR/wport.txt" --threads 2 --cache-mb 16 \
    > "$WORK_DIR/whttpd.log" 2> /dev/null &
WHTTPD_PID=$!
for _ in $(seq 1 100); do
  test -s "$WORK_DIR/wport.txt" && break
  sleep 0.1
done
test -s "$WORK_DIR/wport.txt"
WHTTPD_PORT="$(cat "$WORK_DIR/wport.txt")"
"$TOOLS/ivr_workload" --workload "$SRC_DIR/workloads/http_smoke.json" \
    --collection "$WORK_DIR/c.ivr" --port "$WHTTPD_PORT" \
    > "$WORK_DIR/http_workload.log" 2> /dev/null
test "$(grep -c "^phase " "$WORK_DIR/http_workload.log")" -eq 2
if grep -q "failures [1-9]" "$WORK_DIR/http_workload.log"; then
  echo "http workload had failures:" >&2
  cat "$WORK_DIR/http_workload.log" >&2
  exit 1
fi
kill -TERM "$WHTTPD_PID"
wait "$WHTTPD_PID" || true

echo "tools pipeline OK"
