#!/bin/sh
# End-to-end smoke test of the CLI tools: generate -> search -> evaluate
# -> simulate -> replay -> evaluate-the-replay. Run by CTest with the
# build directory as the first argument.
set -e

BUILD_DIR="$1"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

TOOLS="$BUILD_DIR/tools"

"$TOOLS/ivr_generate" --out "$WORK_DIR/c.ivr" --videos 10 --topics 6 \
    --seed 5 --qrels "$WORK_DIR/qrels.txt" > "$WORK_DIR/gen.log"
grep -q "wrote" "$WORK_DIR/gen.log"
test -s "$WORK_DIR/c.ivr"
test -s "$WORK_DIR/qrels.txt"

"$TOOLS/ivr_search" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25.txt" > /dev/null
test -s "$WORK_DIR/run_bm25.txt"

"$TOOLS/ivr_search" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_tfidf.txt" --scorer tfidf > /dev/null

# Evaluation against the embedded qrels and the exported qrels must agree.
"$TOOLS/ivr_eval" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25.txt" > "$WORK_DIR/eval_embedded.txt"
"$TOOLS/ivr_eval" --qrels "$WORK_DIR/qrels.txt" \
    --run "$WORK_DIR/run_bm25.txt" > "$WORK_DIR/eval_exported.txt"
cmp "$WORK_DIR/eval_embedded.txt" "$WORK_DIR/eval_exported.txt"
grep -q "mean" "$WORK_DIR/eval_embedded.txt"

# Comparison mode prints significance tests.
"$TOOLS/ivr_eval" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_bm25.txt" --run2 "$WORK_DIR/run_tfidf.txt" \
    | grep -q "paired t-test"

# Simulate users, replay their logs adaptively, and evaluate the result.
"$TOOLS/ivr_simulate" --collection "$WORK_DIR/c.ivr" \
    --log "$WORK_DIR/logs.tsv" --sessions-per-topic 1 > /dev/null
test -s "$WORK_DIR/logs.tsv"

"$TOOLS/ivr_replay" --collection "$WORK_DIR/c.ivr" \
    --log "$WORK_DIR/logs.tsv" --run "$WORK_DIR/run_replay.txt" > /dev/null
test -s "$WORK_DIR/run_replay.txt"

"$TOOLS/ivr_eval" --collection "$WORK_DIR/c.ivr" \
    --run "$WORK_DIR/run_replay.txt" | grep -q "mean"

# Determinism: regenerating with the same seed is byte-identical.
"$TOOLS/ivr_generate" --out "$WORK_DIR/c2.ivr" --videos 10 --topics 6 \
    --seed 5 > /dev/null
cmp "$WORK_DIR/c.ivr" "$WORK_DIR/c2.ivr"

# Ad-hoc query mode prints ranked shots.
QUERY_WORD="$(sed -n 's/^.*\t\([a-z]*\) [a-z]*bo day.*$/\1/p' \
    "$WORK_DIR/c.ivr" | head -1)"
if [ -n "$QUERY_WORD" ]; then
  "$TOOLS/ivr_search" --collection "$WORK_DIR/c.ivr" \
      --query "$QUERY_WORD" --k 5 | grep -q "results for"
fi

echo "tools pipeline OK"
