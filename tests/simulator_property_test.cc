// Property suite for the session simulator across environments × user
// stereotypes × seeds: every simulated session must produce a
// well-formed, capability-consistent, chronologically ordered log.

#include <gtest/gtest.h>

#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

struct SimCase {
  Environment env;
  int user_kind;  // 0 novice, 1 expert, 2 couch
  uint64_t seed;
};

UserModel UserFor(int kind) {
  switch (kind) {
    case 0:
      return NoviceUser();
    case 1:
      return ExpertUser();
    default:
      return CouchViewerUser();
  }
}

class SimulatorPropertyTest : public ::testing::TestWithParam<SimCase> {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.seed = 111;
    options.num_topics = 6;
    options.num_videos = 10;
    options.topic_title_word_offset = 4;
    generated_ = new GeneratedCollection(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection)
                  .value()
                  .release();
  }

  SimulatedSession Run() const {
    const SimCase& c = GetParam();
    StaticBackend backend(*engine_);
    SessionSimulator simulator(generated_->collection, generated_->qrels);
    SessionSimulator::RunConfig config;
    config.environment = c.env;
    config.seed = c.seed;
    config.session_id = "prop";
    config.user_id = "u";
    return simulator
        .Run(&backend, generated_->topics.topics[c.seed %
                                                 generated_->topics.size()],
             UserFor(c.user_kind), config, nullptr)
        .value();
  }

  static GeneratedCollection* generated_;
  static RetrievalEngine* engine_;
};

GeneratedCollection* SimulatorPropertyTest::generated_ = nullptr;
RetrievalEngine* SimulatorPropertyTest::engine_ = nullptr;

TEST_P(SimulatorPropertyTest, EventsChronologicalAndTerminated) {
  const SimulatedSession session = Run();
  ASSERT_FALSE(session.events.empty());
  TimeMs previous = session.events.front().time;
  for (const InteractionEvent& ev : session.events) {
    EXPECT_GE(ev.time, previous);
    previous = ev.time;
    EXPECT_EQ(ev.session_id, "prop");
  }
  EXPECT_EQ(session.events.back().type, EventType::kSessionEnd);
  // Exactly one session end.
  size_t ends = 0;
  for (const InteractionEvent& ev : session.events) {
    if (ev.type == EventType::kSessionEnd) ++ends;
  }
  EXPECT_EQ(ends, 1u);
}

TEST_P(SimulatorPropertyTest, ShotEventsReferenceValidShots) {
  const SimulatedSession session = Run();
  for (const InteractionEvent& ev : session.events) {
    if (EventHasShot(ev.type)) {
      EXPECT_LT(ev.shot, generated_->collection.num_shots());
    } else {
      EXPECT_EQ(ev.shot, kInvalidShotId);
    }
  }
}

TEST_P(SimulatorPropertyTest, EventsRespectEnvironmentCapabilities) {
  const SimulatedSession session = Run();
  if (GetParam().env != Environment::kTv) return;
  for (const InteractionEvent& ev : session.events) {
    EXPECT_NE(ev.type, EventType::kTooltipHover);
    EXPECT_NE(ev.type, EventType::kHighlightMetadata);
  }
}

TEST_P(SimulatorPropertyTest, OutcomeCountsMatchEvents) {
  const SimulatedSession session = Run();
  size_t queries = 0;
  size_t clicks = 0;
  size_t plays = 0;
  size_t marks = 0;
  for (const InteractionEvent& ev : session.events) {
    switch (ev.type) {
      case EventType::kQuerySubmit:
      case EventType::kVisualExample:  // query-by-example counts too
        ++queries;
        break;
      case EventType::kClickKeyframe:
        ++clicks;
        break;
      case EventType::kPlayStart:
        ++plays;
        break;
      case EventType::kMarkRelevant:
      case EventType::kMarkNotRelevant:
        ++marks;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(session.outcome.queries_issued, queries);
  EXPECT_EQ(session.outcome.clicks, clicks);
  EXPECT_EQ(session.outcome.plays, plays);
  EXPECT_EQ(session.outcome.explicit_judgments, marks);
  EXPECT_EQ(session.outcome.per_query_results.size(), queries);
}

TEST_P(SimulatorPropertyTest, SessionDurationWithinBudgetPlusSlack) {
  const SimulatedSession session = Run();
  const UserModel user = UserFor(GetParam().user_kind);
  // The policy checks the budget between actions, so a session may
  // overshoot by at most one playback (max shot duration) plus a small
  // number of fixed-cost actions.
  const TimeMs slack = 15000 + 30000;
  EXPECT_LE(session.outcome.session_ms, user.session_budget_ms + slack);
}

TEST_P(SimulatorPropertyTest, PerceivedRelevantShotsWereTouched) {
  const SimulatedSession session = Run();
  std::set<ShotId> touched;
  for (const InteractionEvent& ev : session.events) {
    if (ev.type == EventType::kClickKeyframe) touched.insert(ev.shot);
  }
  for (ShotId shot : session.outcome.perceived_relevant) {
    EXPECT_TRUE(touched.count(shot) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimulatorPropertyTest,
    ::testing::Values(SimCase{Environment::kDesktop, 0, 1},
                      SimCase{Environment::kDesktop, 1, 2},
                      SimCase{Environment::kDesktop, 2, 3},
                      SimCase{Environment::kTv, 0, 4},
                      SimCase{Environment::kTv, 1, 5},
                      SimCase{Environment::kTv, 2, 6},
                      SimCase{Environment::kDesktop, 0, 7},
                      SimCase{Environment::kTv, 2, 8},
                      SimCase{Environment::kDesktop, 1, 9},
                      SimCase{Environment::kTv, 1, 10}));

}  // namespace
}  // namespace ivr
