// Unit tests for the sharded LRU result cache, plus the engine-level
// canonicalisation contract: a reordered surface form of the same
// analysed query must hit the same entry, while anything that changes the
// ranking (k, scorer, weights) must not.

#include "ivr/cache/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

ResultList MakeList(ShotId base, size_t n) {
  std::vector<RankedShot> items;
  for (size_t i = 0; i < n; ++i) {
    items.push_back(
        RankedShot{base + static_cast<ShotId>(i), 1.0 / (i + 1.0)});
  }
  return ResultList(std::move(items));
}

TEST(ResultCacheTest, HitReturnsExactInsertedValue) {
  ResultCache cache;
  const ResultList value = MakeList(10, 5);
  cache.Insert("key-a", value, cache.generation());
  ResultList out;
  ASSERT_TRUE(cache.Lookup("key-a", &out));
  EXPECT_EQ(out.items(), value.items());  // exact doubles, exact order
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, MissOnUnknownKey) {
  ResultCache cache;
  ResultList out;
  EXPECT_FALSE(cache.Lookup("nope", &out));
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(ResultCacheTest, ReinsertReplacesValue) {
  ResultCache cache;
  cache.Insert("key", MakeList(1, 3), cache.generation());
  cache.Insert("key", MakeList(100, 4), cache.generation());
  ResultList out;
  ASSERT_TRUE(cache.Lookup("key", &out));
  EXPECT_EQ(out.items(), MakeList(100, 4).items());
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ResultCacheTest, LruEvictionRespectsByteBudget) {
  ResultCacheOptions options;
  options.num_shards = 1;  // one shard: LRU order is global
  options.max_bytes = 2048;
  ResultCache cache(options);
  // Each entry charges ~128 overhead + key + 10*16 item bytes, so the
  // budget holds a handful; keep inserting until eviction must occur.
  for (int i = 0; i < 32; ++i) {
    cache.Insert("entry-" + std::to_string(i), MakeList(1, 10),
                 cache.generation());
  }
  const ResultCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  // The newest entry survived; the oldest was evicted.
  ResultList out;
  EXPECT_TRUE(cache.Lookup("entry-31", &out));
  EXPECT_FALSE(cache.Lookup("entry-0", &out));
}

TEST(ResultCacheTest, LookupRefreshesLruPosition) {
  ResultCacheOptions options;
  options.num_shards = 1;
  options.max_bytes = 1024;
  ResultCache cache(options);
  cache.Insert("hot", MakeList(1, 8), cache.generation());
  ResultList out;
  for (int i = 0; i < 16; ++i) {
    // Touch "hot" between fillers: it must never become the LRU victim.
    ASSERT_TRUE(cache.Lookup("hot", &out)) << "evicted after " << i;
    cache.Insert("filler-" + std::to_string(i), MakeList(50, 8),
                 cache.generation());
  }
  EXPECT_TRUE(cache.Lookup("hot", &out));
  EXPECT_GT(cache.Stats().evictions, 0u);
}

TEST(ResultCacheTest, OversizedInsertRejected) {
  ResultCacheOptions options;
  options.num_shards = 1;
  options.max_bytes = 256;
  ResultCache cache(options);
  cache.Insert("big", MakeList(1, 1000), cache.generation());
  ResultList out;
  EXPECT_FALSE(cache.Lookup("big", &out));
  EXPECT_EQ(cache.Stats().rejected_inserts, 1u);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, InvalidateAllDropsEntriesAndBumpsGeneration) {
  ResultCache cache;
  const uint64_t gen0 = cache.generation();
  cache.Insert("key", MakeList(1, 3), gen0);
  cache.InvalidateAll();
  EXPECT_EQ(cache.generation(), gen0 + 1);
  ResultList out;
  EXPECT_FALSE(cache.Lookup("key", &out));
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

TEST(ResultCacheTest, StaleGenerationInsertRejected) {
  ResultCache cache;
  // A compute snapshots the generation, then the collection reloads
  // (InvalidateAll) before the insert lands: the stale value must not
  // re-populate the cache.
  const uint64_t stale = cache.generation();
  cache.InvalidateAll();
  cache.Insert("key", MakeList(1, 3), stale);
  ResultList out;
  EXPECT_FALSE(cache.Lookup("key", &out));
  EXPECT_EQ(cache.Stats().rejected_inserts, 1u);
  // The current generation inserts fine.
  cache.Insert("key", MakeList(1, 3), cache.generation());
  EXPECT_TRUE(cache.Lookup("key", &out));
}

class ResultCacheEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 42;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    cache_ = std::make_shared<ResultCache>();
    engine_->AttachCache(cache_);
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::shared_ptr<ResultCache> cache_;
};

TEST_F(ResultCacheEngineTest, ReorderedQueryWordsShareOneEntry) {
  // Term canonicalisation: the fingerprint sorts analysed terms, and the
  // searcher's scoring is term-order-independent, so both surface forms
  // must map to one entry and serve the identical ranking.
  const std::string title = generated_->topics.topics[0].title;
  const size_t space = title.find(' ');
  ASSERT_NE(space, std::string::npos) << "need a multi-word topic title";
  const std::string reordered =
      title.substr(space + 1) + " " + title.substr(0, space);

  Query forward;
  forward.text = title;
  Query backward;
  backward.text = reordered;
  const ResultList first = engine_->Search(forward, 50);
  const uint64_t hits_before = cache_->Stats().hits;
  const ResultList second = engine_->Search(backward, 50);
  EXPECT_GT(cache_->Stats().hits, hits_before)
      << "reordered words missed the cache";
  EXPECT_EQ(first.items(), second.items());
}

TEST_F(ResultCacheEngineTest, DifferentKDoesNotShareEntries) {
  // k is part of the fused fingerprint: after caching a k=10 ranking,
  // a k=50 search must not be served the truncated entry. (The shared
  // per-modality sub-results may still hit — that is the design.)
  Query query;
  query.text = generated_->topics.topics[0].title;
  const ResultList small = engine_->Search(query, 10);
  const ResultList large = engine_->Search(query, 50);
  ASSERT_LE(small.size(), 10u);
  EXPECT_GT(large.size(), small.size())
      << "k=50 search was served the cached k=10 entry";
}

TEST_F(ResultCacheEngineTest, CachedSearchBitIdenticalToUncached) {
  std::unique_ptr<RetrievalEngine> uncached =
      RetrievalEngine::Build(generated_->collection).value();
  for (const SearchTopic& topic : generated_->topics.topics) {
    Query query;
    query.text = topic.title;
    query.examples = topic.examples;
    const ResultList reference = uncached->Search(query, 100);
    const ResultList cold = engine_->Search(query, 100);   // fills cache
    const ResultList warm = engine_->Search(query, 100);   // serves hit
    EXPECT_EQ(reference.items(), cold.items()) << topic.title;
    EXPECT_EQ(reference.items(), warm.items()) << topic.title;
  }
  EXPECT_GT(cache_->Stats().hits, 0u);
}

TEST_F(ResultCacheEngineTest, InvalidateAllForcesRecomputeThatStillMatches) {
  Query query;
  query.text = generated_->topics.topics[1].title;
  const ResultList before = engine_->Search(query, 50);
  cache_->InvalidateAll();
  const uint64_t misses_before = cache_->Stats().misses;
  const ResultList after = engine_->Search(query, 50);
  EXPECT_GT(cache_->Stats().misses, misses_before);
  EXPECT_EQ(before.items(), after.items());
}

}  // namespace
}  // namespace ivr
