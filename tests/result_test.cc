#include "ivr/core/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good = 7;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(good.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, ArrowOperatorOnStructs) {
  struct Payload {
    std::string name;
  };
  Result<Payload> r = Payload{"shot1"};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "shot1");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto fail = []() -> Result<int> { return Status::OutOfRange("far"); };
  auto wrapper = [&]() -> Status {
    IVR_ASSIGN_OR_RETURN(int v, fail());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsOutOfRange());
}

TEST(ResultTest, AssignOrReturnMacroAssignsValue) {
  auto make = []() -> Result<std::vector<int>> {
    return std::vector<int>{1, 2, 3};
  };
  auto wrapper = [&]() -> Result<size_t> {
    IVR_ASSIGN_OR_RETURN(std::vector<int> v, make());
    return v.size();
  };
  Result<size_t> r = wrapper();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 3u);
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r(Status::OK()); (void)r; }, "");
}

}  // namespace
}  // namespace ivr
