#include "ivr/features/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(ColorHistogramTest, DefaultIsZeroVector) {
  ColorHistogram h;
  EXPECT_EQ(h.size(), ColorHistogram::kDefaultBins);
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_DOUBLE_EQ(h[i], 0.0);
  }
}

TEST(ColorHistogramTest, RandomPrototypeIsNormalized) {
  Rng rng(1);
  const ColorHistogram h = ColorHistogram::RandomPrototype(&rng);
  double total = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_GE(h[i], 0.0);
    total += h[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ColorHistogramTest, NormalizeL1HandlesZeroAndNegatives) {
  ColorHistogram zero(std::vector<double>{0.0, 0.0});
  zero.NormalizeL1();  // must not divide by zero
  EXPECT_DOUBLE_EQ(zero[0], 0.0);

  ColorHistogram mixed(std::vector<double>{-1.0, 2.0, 2.0});
  mixed.NormalizeL1();
  EXPECT_DOUBLE_EQ(mixed[0], 0.0);  // negatives clamp to zero
  EXPECT_NEAR(mixed[1], 0.5, 1e-12);
}

TEST(ColorHistogramTest, PerturbZeroSigmaIsCopy) {
  Rng rng(2);
  const ColorHistogram proto = ColorHistogram::RandomPrototype(&rng);
  const ColorHistogram copy = proto.Perturb(&rng, 0.0);
  EXPECT_NEAR(L1Distance(proto, copy), 0.0, 1e-12);
}

TEST(ColorHistogramTest, PerturbedStaysCloserToOwnPrototype) {
  Rng rng(3);
  const ColorHistogram a = ColorHistogram::RandomPrototype(&rng);
  const ColorHistogram b = ColorHistogram::RandomPrototype(&rng);
  int closer = 0;
  for (int i = 0; i < 50; ++i) {
    const ColorHistogram p = a.Perturb(&rng, 0.3);
    if (L1Distance(p, a) < L1Distance(p, b)) ++closer;
  }
  EXPECT_GE(closer, 45);  // visual signal survives perturbation
}

TEST(DistanceTest, IdentityProperties) {
  Rng rng(4);
  const ColorHistogram h = ColorHistogram::RandomPrototype(&rng);
  EXPECT_DOUBLE_EQ(L1Distance(h, h), 0.0);
  EXPECT_DOUBLE_EQ(L2Distance(h, h), 0.0);
  EXPECT_NEAR(CosineSimilarity(h, h), 1.0, 1e-12);
  EXPECT_NEAR(HistogramIntersection(h, h), 1.0, 1e-9);
}

TEST(DistanceTest, Symmetry) {
  Rng rng(5);
  const ColorHistogram a = ColorHistogram::RandomPrototype(&rng);
  const ColorHistogram b = ColorHistogram::RandomPrototype(&rng);
  EXPECT_DOUBLE_EQ(L1Distance(a, b), L1Distance(b, a));
  EXPECT_DOUBLE_EQ(L2Distance(a, b), L2Distance(b, a));
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), CosineSimilarity(b, a));
  EXPECT_DOUBLE_EQ(HistogramIntersection(a, b),
                   HistogramIntersection(b, a));
}

TEST(DistanceTest, RangesForNormalizedInput) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const ColorHistogram a = ColorHistogram::RandomPrototype(&rng);
    const ColorHistogram b = ColorHistogram::RandomPrototype(&rng);
    EXPECT_GE(L1Distance(a, b), 0.0);
    EXPECT_LE(L1Distance(a, b), 2.0 + 1e-9);  // L1 of two unit vectors
    const double hi = HistogramIntersection(a, b);
    EXPECT_GE(hi, 0.0);
    EXPECT_LE(hi, 1.0 + 1e-9);
    const double cos = CosineSimilarity(a, b);
    EXPECT_GE(cos, 0.0);
    EXPECT_LE(cos, 1.0 + 1e-9);
  }
}

TEST(DistanceTest, MismatchedSizesAreWorstCase) {
  const ColorHistogram a(std::vector<double>{1.0});
  const ColorHistogram b(std::vector<double>{0.5, 0.5});
  EXPECT_TRUE(std::isinf(L1Distance(a, b)));
  EXPECT_TRUE(std::isinf(L2Distance(a, b)));
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(HistogramIntersection(a, b), 0.0);
}

TEST(DistanceTest, TriangleInequalityL2) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const ColorHistogram a = ColorHistogram::RandomPrototype(&rng);
    const ColorHistogram b = ColorHistogram::RandomPrototype(&rng);
    const ColorHistogram c = ColorHistogram::RandomPrototype(&rng);
    EXPECT_LE(L2Distance(a, c),
              L2Distance(a, b) + L2Distance(b, c) + 1e-9);
  }
}

}  // namespace
}  // namespace ivr
