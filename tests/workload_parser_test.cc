// Golden accept/reject suite for the workload DSL parser: valid documents
// round-trip through ToJson(), and every malformed document is rejected
// with a diagnostic naming the offending field by path — never an abort.

#include <gtest/gtest.h>

#include <string>

#include "ivr/core/status.h"
#include "ivr/workload/spec.h"

namespace ivr {
namespace workload {
namespace {

/// The kitchen-sink valid document: every optional block present, both
/// phase modes, mixes, faults and writes.
const char* kFullDoc = R"({
  "name": "full",
  "seed": 9,
  "target": "direct",
  "cache": {"mb": 16, "shards": 4},
  "service": {"shards": 4, "max_sessions": 100, "ttl_ms": 60000},
  "ingest": {"stream_seed": 7, "stream_videos": 6, "stream_topics": 6,
             "publish_every": 2, "merge_after": 3,
             "background_merge": true},
  "phases": [
    {"name": "warm", "mode": "closed", "actors": 4, "sessions": 16,
     "session_mix": [{"user": "novice", "weight": 3},
                     {"user": "expert", "weight": 1}],
     "env": "tv", "think_ms": 5},
    {"name": "surge", "mode": "open", "actors": 8, "duration_ms": 2000,
     "rate": 500, "k": 20,
     "query_mix": [{"text": "election results", "weight": 2},
                   {"text": "weather", "weight": 1}],
     "writes": {"rate": 10, "publish_every": 4},
     "fault_spec": "engine.visual:0.05", "fault_seed": 3}
  ]
})";

std::string ParseError(const std::string& json) {
  Result<WorkloadSpec> spec = ParseWorkload(json);
  EXPECT_FALSE(spec.ok()) << "unexpectedly accepted: " << json;
  if (spec.ok()) return "";
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument)
      << spec.status().ToString();
  return spec.status().ToString();
}

TEST(WorkloadParserTest, FullDocumentRoundTrips) {
  Result<WorkloadSpec> spec = ParseWorkload(kFullDoc);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "full");
  EXPECT_EQ(spec->seed, 9u);
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_EQ(spec->phases[0].mode, PhaseMode::kClosed);
  EXPECT_EQ(spec->phases[0].env, Environment::kTv);
  EXPECT_EQ(spec->phases[0].session_mix.size(), 2u);
  EXPECT_EQ(spec->phases[1].mode, PhaseMode::kOpen);
  EXPECT_EQ(spec->phases[1].rate, 500.0);
  ASSERT_TRUE(spec->phases[1].writes.has_value());
  EXPECT_EQ(spec->phases[1].writes->publish_every, 4u);

  // The canonical form is a fixed point: Parse(ToJson()) == ToJson().
  const std::string canonical = spec->ToJson();
  Result<WorkloadSpec> reparsed = ParseWorkload(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToJson(), canonical);
}

TEST(WorkloadParserTest, MinimalDocumentGetsDefaults) {
  Result<WorkloadSpec> spec = ParseWorkload(
      R"({"name": "mini", "phases": [
            {"name": "p", "mode": "closed", "sessions": 1}]})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->seed, 1u);
  EXPECT_EQ(spec->target, TargetKind::kDirect);
  EXPECT_EQ(spec->cache.mb, 0u);
  ASSERT_EQ(spec->phases.size(), 1u);
  EXPECT_EQ(spec->phases[0].actors, 1u);
  // The default session mix is all-novice.
  ASSERT_EQ(spec->phases[0].session_mix.size(), 1u);
  EXPECT_EQ(spec->phases[0].session_mix[0].user, "novice");

  const std::string canonical = spec->ToJson();
  Result<WorkloadSpec> reparsed = ParseWorkload(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToJson(), canonical);
}

TEST(WorkloadParserTest, PublishRatePacingRoundTrips) {
  Result<WorkloadSpec> spec = ParseWorkload(
      R"({"name": "pr",
          "ingest": {"merge_after": 2},
          "phases": [
            {"name": "p", "mode": "open", "duration_ms": 100, "rate": 10,
             "writes": {"rate": 5, "publish_rate": 2.5}}]})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->ingest->merge_after, 2u);
  EXPECT_FALSE(spec->ingest->background_merge);
  ASSERT_TRUE(spec->phases[0].writes.has_value());
  EXPECT_EQ(spec->phases[0].writes->publish_rate, 2.5);
  // Time-based pacing replaces the count trigger outright — no inherited
  // workload-level publish_every default.
  EXPECT_EQ(spec->phases[0].writes->publish_every, 0u);

  const std::string canonical = spec->ToJson();
  Result<WorkloadSpec> reparsed = ParseWorkload(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToJson(), canonical);
}

TEST(WorkloadParserTest, RejectsBadPublishAndMergeKnobs) {
  // publish_rate and publish_every cannot both be set.
  const std::string both = ParseError(
      R"({"name": "w", "ingest": {},
          "phases": [
            {"name": "p", "mode": "open", "duration_ms": 100, "rate": 10,
             "writes": {"rate": 5, "publish_rate": 2,
                        "publish_every": 3}}]})");
  EXPECT_NE(both.find("publish_every"), std::string::npos) << both;
  EXPECT_NE(both.find("mutually exclusive"), std::string::npos) << both;

  const std::string nonpositive = ParseError(
      R"({"name": "w", "ingest": {},
          "phases": [
            {"name": "p", "mode": "open", "duration_ms": 100, "rate": 10,
             "writes": {"rate": 5, "publish_rate": 0}}]})");
  EXPECT_NE(nonpositive.find("publish_rate"), std::string::npos)
      << nonpositive;

  // background_merge without a threshold could never merge.
  const std::string orphan_merge = ParseError(
      R"({"name": "w", "ingest": {"background_merge": true},
          "phases": [{"name": "p", "mode": "closed", "sessions": 1}]})");
  EXPECT_NE(orphan_merge.find("$.ingest.background_merge"),
            std::string::npos)
      << orphan_merge;

  const std::string non_bool = ParseError(
      R"({"name": "w", "ingest": {"merge_after": 2,
                                  "background_merge": 1},
          "phases": [{"name": "p", "mode": "closed", "sessions": 1}]})");
  EXPECT_NE(non_bool.find("must be true or false"), std::string::npos)
      << non_bool;
}

TEST(WorkloadParserTest, RejectsNonObjectAndGarbage) {
  EXPECT_NE(ParseError("[]").find("$"), std::string::npos);
  EXPECT_FALSE(ParseWorkload("{ not json").ok());
  EXPECT_FALSE(ParseWorkload("").ok());
}

TEST(WorkloadParserTest, RejectsUnknownTopLevelKey) {
  const std::string error = ParseError(
      R"({"name": "w", "bogus": 1,
          "phases": [{"name": "p", "mode": "closed", "sessions": 1}]})");
  EXPECT_NE(error.find("$.bogus"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  EXPECT_NE(error.find("known keys"), std::string::npos) << error;
}

TEST(WorkloadParserTest, RejectsUnknownPhaseKey) {
  const std::string error = ParseError(
      R"({"name": "w", "phases": [
            {"name": "p", "mode": "closed", "sessions": 1, "warmup": 1}]})");
  EXPECT_NE(error.find("$.phases[0].warmup"), std::string::npos) << error;
}

TEST(WorkloadParserTest, RejectsMissingName) {
  const std::string error = ParseError(
      R"({"phases": [{"name": "p", "mode": "closed", "sessions": 1}]})");
  EXPECT_NE(error.find("$.name"), std::string::npos) << error;
}

TEST(WorkloadParserTest, RejectsMissingOrEmptyPhases) {
  EXPECT_NE(ParseError(R"({"name": "w"})").find("$.phases"),
            std::string::npos);
  EXPECT_NE(ParseError(R"({"name": "w", "phases": []})").find("$.phases"),
            std::string::npos);
}

TEST(WorkloadParserTest, RejectsBadMode) {
  const std::string error = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "burst"}]})");
  EXPECT_NE(error.find("$.phases[0].mode"), std::string::npos) << error;
  EXPECT_NE(error.find("burst"), std::string::npos) << error;
}

TEST(WorkloadParserTest, ClosedPhaseRequiresSessions) {
  const std::string error = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed"}]})");
  EXPECT_NE(error.find("$.phases[0].sessions"), std::string::npos) << error;
  EXPECT_NE(error.find("required"), std::string::npos) << error;
}

TEST(WorkloadParserTest, OpenPhaseRequiresDurationAndRate) {
  const std::string no_duration = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "open",
                                   "rate": 10}]})");
  EXPECT_NE(no_duration.find("$.phases[0].duration_ms"), std::string::npos)
      << no_duration;
  const std::string no_rate = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "open",
                                   "duration_ms": 100}]})");
  EXPECT_NE(no_rate.find("$.phases[0].rate"), std::string::npos) << no_rate;
}

TEST(WorkloadParserTest, RejectsNonPositiveDurationAndRate) {
  const std::string negative = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "open",
                                   "duration_ms": -5, "rate": 10}]})");
  EXPECT_NE(negative.find("$.phases[0].duration_ms"), std::string::npos)
      << negative;
  const std::string zero_rate = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "open",
                                   "duration_ms": 100, "rate": 0}]})");
  EXPECT_NE(zero_rate.find("$.phases[0].rate"), std::string::npos)
      << zero_rate;
}

TEST(WorkloadParserTest, RejectsModeMismatchedKeys) {
  // Closed phases must not carry open-loop shape keys and vice versa; the
  // diagnostic names the misplaced key, not just "unknown".
  const std::string closed_rate = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed",
                                   "sessions": 1, "rate": 10}]})");
  EXPECT_NE(closed_rate.find("$.phases[0].rate"), std::string::npos)
      << closed_rate;
  const std::string open_sessions = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "open",
                                   "duration_ms": 100, "rate": 10,
                                   "sessions": 4}]})");
  EXPECT_NE(open_sessions.find("$.phases[0].sessions"), std::string::npos)
      << open_sessions;
}

TEST(WorkloadParserTest, RejectsBadSessionMix) {
  const std::string unknown_user = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed",
            "sessions": 1,
            "session_mix": [{"user": "wizard", "weight": 1}]}]})");
  EXPECT_NE(unknown_user.find("$.phases[0].session_mix[0].user"),
            std::string::npos)
      << unknown_user;
  const std::string bad_weight = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed",
            "sessions": 1,
            "session_mix": [{"user": "novice", "weight": 0}]}]})");
  EXPECT_NE(bad_weight.find("$.phases[0].session_mix[0].weight"),
            std::string::npos)
      << bad_weight;
  const std::string empty = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed",
            "sessions": 1, "session_mix": []}]})");
  EXPECT_NE(empty.find("$.phases[0].session_mix"), std::string::npos)
      << empty;
}

TEST(WorkloadParserTest, RejectsBadQueryMix) {
  const std::string empty_text = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "open",
            "duration_ms": 100, "rate": 10,
            "query_mix": [{"text": "", "weight": 1}]}]})");
  EXPECT_NE(empty_text.find("$.phases[0].query_mix[0].text"),
            std::string::npos)
      << empty_text;
}

TEST(WorkloadParserTest, RejectsDuplicatePhaseNames) {
  const std::string error = ParseError(
      R"({"name": "w", "phases": [
            {"name": "p", "mode": "closed", "sessions": 1},
            {"name": "p", "mode": "closed", "sessions": 1}]})");
  EXPECT_NE(error.find("$.phases[1].name"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(WorkloadParserTest, WritesRequireIngestBlockAndDirectTarget) {
  const std::string no_ingest = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "open",
            "duration_ms": 100, "rate": 10, "writes": {"rate": 1}}]})");
  EXPECT_NE(no_ingest.find("$.phases[0].writes"), std::string::npos)
      << no_ingest;
  EXPECT_NE(no_ingest.find("ingest"), std::string::npos) << no_ingest;

  const std::string http_ingest = ParseError(
      R"({"name": "w", "target": "http",
          "ingest": {},
          "phases": [{"name": "p", "mode": "closed", "sessions": 1}]})");
  EXPECT_NE(http_ingest.find("$.ingest"), std::string::npos) << http_ingest;
}

TEST(WorkloadParserTest, RejectsBadHttpBlock) {
  const std::string bad_port = ParseError(
      R"({"name": "w", "target": "http", "http": {"port": 70000},
          "phases": [{"name": "p", "mode": "closed", "sessions": 1}]})");
  EXPECT_NE(bad_port.find("$.http.port"), std::string::npos) << bad_port;
  EXPECT_NE(bad_port.find("65535"), std::string::npos) << bad_port;
}

TEST(WorkloadParserTest, RejectsEmptyFaultSpec) {
  const std::string error = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed",
            "sessions": 1, "fault_spec": ""}]})");
  EXPECT_NE(error.find("$.phases[0].fault_spec"), std::string::npos)
      << error;
}

TEST(WorkloadParserTest, RejectsNonIntegerCounts) {
  const std::string fractional = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed",
            "sessions": 1.5}]})");
  EXPECT_NE(fractional.find("$.phases[0].sessions"), std::string::npos)
      << fractional;
  EXPECT_NE(fractional.find("integer"), std::string::npos) << fractional;
}

TEST(WorkloadParserTest, RejectsOutOfRangeActors) {
  const std::string error = ParseError(
      R"({"name": "w", "phases": [{"name": "p", "mode": "closed",
            "sessions": 1, "actors": 0}]})");
  EXPECT_NE(error.find("$.phases[0].actors"), std::string::npos) << error;
  EXPECT_NE(error.find("[1, 256]"), std::string::npos) << error;
}

TEST(WorkloadParserTest, UserModelByNameCoversStereotypes) {
  for (const char* name : {"novice", "expert", "couch"}) {
    Result<UserModel> user = UserModelByName(name);
    ASSERT_TRUE(user.ok()) << name;
  }
  EXPECT_FALSE(UserModelByName("wizard").ok());
}

TEST(WorkloadParserTest, LoadWorkloadFilePrefixesPath) {
  Result<WorkloadSpec> missing =
      LoadWorkloadFile("/nonexistent/workload.json");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace workload
}  // namespace ivr
