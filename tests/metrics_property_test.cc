// Property suite for the evaluation metrics: invariants that must hold
// for ANY run/qrels pair, checked over randomly generated instances.

#include <cmath>

#include <gtest/gtest.h>

#include "ivr/core/rng.h"
#include "ivr/eval/metrics.h"

namespace ivr {
namespace {

struct Instance {
  Qrels qrels;
  ResultList run;
  SearchTopicId topic = 1;
  size_t collection_size = 0;
};

Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.collection_size =
      static_cast<size_t>(rng.UniformInt(5, 200));
  // Judge a random subset relevant with random grades.
  for (size_t shot = 0; shot < inst.collection_size; ++shot) {
    if (rng.Bernoulli(0.25)) {
      inst.qrels.Set(inst.topic, static_cast<ShotId>(shot),
                     rng.Bernoulli(0.3) ? 2 : 1);
    }
  }
  // Retrieve a random subset in random score order.
  for (size_t shot = 0; shot < inst.collection_size; ++shot) {
    if (rng.Bernoulli(0.6)) {
      inst.run.Add(static_cast<ShotId>(shot), rng.UniformDouble());
    }
  }
  return inst;
}

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, AllMetricsInUnitInterval) {
  const Instance inst = MakeInstance(GetParam());
  const TopicMetrics m =
      ComputeTopicMetrics(inst.run, inst.qrels, inst.topic);
  for (double v : {m.ap, m.p5, m.p10, m.p20, m.recall100, m.ndcg10,
                   m.bpref, m.rr}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST_P(MetricsPropertyTest, PerfectRankingMaximizesEverything) {
  const Instance inst = MakeInstance(GetParam());
  // Build the ideal run: all relevant (grade-2 first), then nothing.
  ResultList ideal;
  double score = 1e9;
  for (int grade : {2, 1}) {
    for (ShotId shot : inst.qrels.RelevantShots(inst.topic, grade)) {
      if (inst.qrels.Grade(inst.topic, shot) == grade) {
        ideal.Add(shot, score);
        score -= 1.0;
      }
    }
  }
  if (inst.qrels.NumRelevant(inst.topic) == 0) return;
  EXPECT_NEAR(AveragePrecision(ideal, inst.qrels, inst.topic), 1.0,
              1e-12);
  EXPECT_NEAR(Bpref(ideal, inst.qrels, inst.topic), 1.0, 1e-12);
  EXPECT_NEAR(NdcgAtK(ideal, inst.qrels, inst.topic, 10), 1.0, 1e-12);
  EXPECT_NEAR(ReciprocalRank(ideal, inst.qrels, inst.topic), 1.0, 1e-12);
  // Any other run cannot beat the ideal on AP.
  EXPECT_LE(AveragePrecision(inst.run, inst.qrels, inst.topic),
            1.0 + 1e-12);
}

TEST_P(MetricsPropertyTest, RecallMonotoneInDepth) {
  const Instance inst = MakeInstance(GetParam());
  double previous = 0.0;
  for (size_t k = 1; k <= inst.run.size() + 5; ++k) {
    const double r = RecallAtK(inst.run, inst.qrels, inst.topic, k);
    EXPECT_GE(r, previous - 1e-12);
    previous = r;
  }
}

TEST_P(MetricsPropertyTest, PrecisionTimesKCountsHits) {
  const Instance inst = MakeInstance(GetParam());
  for (size_t k : {1u, 5u, 10u, 50u}) {
    const double p = PrecisionAtK(inst.run, inst.qrels, inst.topic, k);
    const double hits = p * static_cast<double>(k);
    EXPECT_NEAR(hits, std::round(hits), 1e-9);  // integral hit count
    EXPECT_LE(hits,
              static_cast<double>(std::min<size_t>(k, inst.run.size())) +
                  1e-9);
  }
}

TEST_P(MetricsPropertyTest, SwappingRelevantUpImprovesAp) {
  const Instance inst = MakeInstance(GetParam());
  // Find an adjacent (non-relevant, relevant) pair and swap their scores:
  // AP must not decrease.
  const double ap_before =
      AveragePrecision(inst.run, inst.qrels, inst.topic);
  ResultList swapped;
  bool done = false;
  std::vector<RankedShot> items = inst.run.items();
  for (size_t i = 0; i + 1 < items.size() && !done; ++i) {
    const bool upper_rel =
        inst.qrels.IsRelevant(inst.topic, items[i].shot);
    const bool lower_rel =
        inst.qrels.IsRelevant(inst.topic, items[i + 1].shot);
    if (!upper_rel && lower_rel) {
      std::swap(items[i].shot, items[i + 1].shot);
      done = true;
    }
  }
  if (!done) return;  // already perfectly ordered by relevance
  for (const RankedShot& r : items) {
    swapped.Add(r.shot, r.score);
  }
  EXPECT_GE(AveragePrecision(swapped, inst.qrels, inst.topic),
            ap_before - 1e-12);
}

TEST_P(MetricsPropertyTest, UnjudgedTopicYieldsZeroes) {
  const Instance inst = MakeInstance(GetParam());
  const TopicMetrics m =
      ComputeTopicMetrics(inst.run, inst.qrels, /*topic=*/999);
  EXPECT_DOUBLE_EQ(m.ap, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg10, 0.0);
  EXPECT_DOUBLE_EQ(m.rr, 0.0);
  EXPECT_EQ(m.num_relevant, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace ivr
