// Chaos tier for the result cache: with the cache.lookup fault site
// armed, lookups randomly fail and the engine must degrade to an
// uncached recompute — served rankings stay bit-identical to a clean
// uncached run, and the faults are visible in the cache stats and the
// engine's HealthReport.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ivr/cache/result_cache.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/string_util.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

std::string Fingerprint(const ResultList& list) {
  std::string out;
  for (const RankedShot& entry : list.items()) {
    out += StrFormat("%u:%.17g ", entry.shot, entry.score);
  }
  return out;
}

class CacheChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 11;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    uncached_ = RetrievalEngine::Build(generated_->collection).value();
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> uncached_;
};

TEST_F(CacheChaosTest, LookupFaultsDegradeToUncachedButStayCorrect) {
  // Clean reference rankings first, outside the fault scope.
  std::vector<Query> queries;
  std::vector<std::string> reference;
  for (const SearchTopic& topic : generated_->topics.topics) {
    Query query;
    query.text = topic.title;
    query.examples = topic.examples;
    queries.push_back(query);
    reference.push_back(Fingerprint(uncached_->Search(query, 100)));
  }

  ScopedFaultInjection faults("cache.lookup:0.05", /*seed=*/1234);
  ASSERT_TRUE(faults.status().ok());

  std::unique_ptr<RetrievalEngine> engine =
      RetrievalEngine::Build(generated_->collection).value();
  auto cache = std::make_shared<ResultCache>();
  engine->AttachCache(cache);

  // Enough lookups that p=0.05 fires many times (4 topics x 25 rounds x
  // several sub-lookups per search ≈ hundreds of trials).
  for (int round = 0; round < 25; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(Fingerprint(engine->Search(queries[i], 100)), reference[i])
          << "topic " << i << " round " << round;
    }
  }

  const ResultCacheStats stats = cache->Stats();
  EXPECT_GT(stats.lookup_faults, 0u)
      << "fault site never fired; the test exercised nothing";
  EXPECT_GT(stats.hits, 0u) << "non-faulted lookups should still hit";

  // A faulted lookup is a counted miss that degrades to recompute; the
  // recompute's insert is legal, so hits+misses must cover every lookup
  // and the report must surface the fault count.
  EXPECT_GE(stats.misses, stats.lookup_faults);
  const HealthReport health = engine->Health();
  EXPECT_EQ(health.cache_lookup_faults, stats.lookup_faults);
  // The report must surface degraded mode (faults were injected) while
  // showing no query lost a modality: degraded-but-correct.
  EXPECT_TRUE(health.degraded());
  EXPECT_GT(health.faults_injected, 0u);
  EXPECT_EQ(health.degraded_queries, 0u);
}

TEST_F(CacheChaosTest, FaultedInsertPathNeverCorruptsCache) {
  // With faults armed the cache keeps serving whatever it did manage to
  // store; every hit must still be the exact clean ranking.
  Query query;
  query.text = generated_->topics.topics[0].title;
  const std::string reference = Fingerprint(uncached_->Search(query, 50));

  ScopedFaultInjection faults("cache.lookup:0.25", /*seed=*/99);
  ASSERT_TRUE(faults.status().ok());
  std::unique_ptr<RetrievalEngine> engine =
      RetrievalEngine::Build(generated_->collection).value();
  auto cache = std::make_shared<ResultCache>();
  engine->AttachCache(cache);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(Fingerprint(engine->Search(query, 50)), reference)
        << "iteration " << i;
  }
  EXPECT_GT(cache->Stats().lookup_faults, 0u);
}

}  // namespace
}  // namespace ivr
