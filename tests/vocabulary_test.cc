#include "ivr/text/vocabulary.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(VocabularyTest, AssignsDenseIdsInInsertionOrder) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(vocab.GetOrAdd("beta"), 1u);
  EXPECT_EQ(vocab.GetOrAdd("gamma"), 2u);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(VocabularyTest, GetOrAddIsIdempotent) {
  Vocabulary vocab;
  const TermId a = vocab.GetOrAdd("term");
  const TermId b = vocab.GetOrAdd("term");
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary vocab;
  vocab.GetOrAdd("present");
  EXPECT_EQ(vocab.Lookup("absent"), kInvalidTermId);
  EXPECT_EQ(vocab.Lookup("present"), 0u);
}

TEST(VocabularyTest, RoundTripsTermStrings) {
  Vocabulary vocab;
  const TermId id = vocab.GetOrAdd("retrieval");
  EXPECT_EQ(vocab.term(id), "retrieval");
}

TEST(VocabularyTest, EmptyState) {
  Vocabulary vocab;
  EXPECT_TRUE(vocab.empty());
  EXPECT_EQ(vocab.size(), 0u);
  EXPECT_EQ(vocab.Lookup("x"), kInvalidTermId);
}

TEST(VocabularyTest, ManyTermsStayConsistent) {
  Vocabulary vocab;
  for (int i = 0; i < 1000; ++i) {
    vocab.GetOrAdd("term" + std::to_string(i));
  }
  EXPECT_EQ(vocab.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    const std::string term = "term" + std::to_string(i);
    const TermId id = vocab.Lookup(term);
    ASSERT_NE(id, kInvalidTermId);
    EXPECT_EQ(vocab.term(id), term);
  }
}

}  // namespace
}  // namespace ivr
