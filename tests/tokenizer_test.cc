#include "ivr/text/tokenizer.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("Hello World"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, PunctuationSeparates) {
  EXPECT_EQ(Tokenize("news,sports;finance.politics"),
            (std::vector<std::string>{"news", "sports", "finance",
                                      "politics"}));
}

TEST(TokenizerTest, ApostrophesCollapse) {
  EXPECT_EQ(Tokenize("don't can't"),
            (std::vector<std::string>{"dont", "cant"}));
  // Leading apostrophe is a separator, not part of a word.
  EXPECT_EQ(Tokenize("'quoted'"), (std::vector<std::string>{"quoted"}));
}

TEST(TokenizerTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("top10 2008"),
            (std::vector<std::string>{"top10", "2008"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t\n .,!?").empty());
}

TEST(TokenizerTest, NonAsciiBytesAreSeparators) {
  const std::string input = "caf\xC3\xA9 news";
  EXPECT_EQ(Tokenize(input),
            (std::vector<std::string>{"caf", "news"}));
}

TEST(IsNumericTokenTest, Basics) {
  EXPECT_TRUE(IsNumericToken("2008"));
  EXPECT_FALSE(IsNumericToken("top10"));
  EXPECT_FALSE(IsNumericToken(""));
  EXPECT_FALSE(IsNumericToken("1.5"));
}

}  // namespace
}  // namespace ivr
