// Fuzz-style property suite for the session-log text format: randomly
// generated event streams must survive serialize -> parse -> serialize
// byte-identically (after the documented text sanitisation).

#include <gtest/gtest.h>

#include "ivr/core/rng.h"
#include "ivr/iface/session_log.h"

namespace ivr {
namespace {

constexpr EventType kAllTypes[] = {
    EventType::kQuerySubmit,       EventType::kVisualExample,
    EventType::kResultDisplayed,   EventType::kBrowseNextPage,
    EventType::kBrowsePrevPage,    EventType::kTooltipHover,
    EventType::kClickKeyframe,     EventType::kPlayStart,
    EventType::kPlayStop,          EventType::kSeek,
    EventType::kHighlightMetadata, EventType::kMarkRelevant,
    EventType::kMarkNotRelevant,   EventType::kSessionEnd,
};

std::string RandomText(Rng* rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .,:;!?-_/";
  const int64_t len = rng->UniformInt(0, 40);
  std::string out;
  for (int64_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->UniformInt(
        0, static_cast<int64_t>(sizeof(kAlphabet)) - 2)]);
  }
  return out;
}

SessionLog RandomLog(uint64_t seed) {
  Rng rng(seed);
  SessionLog log;
  const int64_t n = rng.UniformInt(0, 120);
  TimeMs t = 0;
  for (int64_t i = 0; i < n; ++i) {
    InteractionEvent ev;
    t += rng.UniformInt(0, 10000);
    ev.time = t;
    ev.session_id = "s" + std::to_string(rng.UniformInt(0, 3));
    ev.user_id = "user" + std::to_string(rng.UniformInt(0, 2));
    ev.topic = static_cast<SearchTopicId>(rng.UniformInt(0, 20));
    ev.type = kAllTypes[rng.UniformInt(
        0, static_cast<int64_t>(std::size(kAllTypes)) - 1)];
    ev.shot = EventHasShot(ev.type)
                  ? static_cast<ShotId>(rng.UniformInt(0, 100000))
                  : kInvalidShotId;
    ev.value = rng.Uniform(-1e6, 1e6);
    if (ev.type == EventType::kQuerySubmit) {
      ev.text = RandomText(&rng);
    }
    log.Append(ev);
  }
  return log;
}

class SessionLogPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionLogPropertyTest, SerializeParseSerializeIsStable) {
  const SessionLog log = RandomLog(GetParam());
  const std::string once = log.Serialize();
  const SessionLog parsed = SessionLog::Parse(once).value();
  EXPECT_EQ(parsed.Serialize(), once);
}

TEST_P(SessionLogPropertyTest, ParsePreservesEveryField) {
  const SessionLog log = RandomLog(GetParam());
  const SessionLog parsed = SessionLog::Parse(log.Serialize()).value();
  ASSERT_EQ(parsed.size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    const InteractionEvent& a = log.events()[i];
    const InteractionEvent& b = parsed.events()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.topic, b.topic);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.shot, b.shot);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_EQ(a.text, b.text);
  }
}

TEST_P(SessionLogPropertyTest, SessionPartitionCoversLog) {
  const SessionLog log = RandomLog(GetParam());
  size_t total = 0;
  for (const std::string& id : log.SessionIds()) {
    total += log.EventsForSession(id).size();
  }
  EXPECT_EQ(total, log.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionLogPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace ivr
