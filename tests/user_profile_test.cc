#include "ivr/profile/user_profile.h"

#include <gtest/gtest.h>

#include "ivr/profile/profile_store.h"

namespace ivr {
namespace {

Shot MakeShot(TopicLabel primary, std::vector<bool> concepts) {
  Shot shot;
  shot.primary_topic = primary;
  shot.concepts = std::move(concepts);
  return shot;
}

TEST(UserProfileTest, SetAndGetInterest) {
  UserProfile profile("alice");
  EXPECT_EQ(profile.user_id(), "alice");
  profile.SetInterest(1, 0.8);
  profile.SetInterest(2, 0.2);
  EXPECT_DOUBLE_EQ(profile.Interest(1), 0.8);
  EXPECT_DOUBLE_EQ(profile.Interest(2), 0.2);
  EXPECT_DOUBLE_EQ(profile.Interest(9), 0.0);
}

TEST(UserProfileTest, NonPositiveInterestRemoves) {
  UserProfile profile("u");
  profile.SetInterest(1, 0.5);
  profile.SetInterest(1, 0.0);
  EXPECT_TRUE(profile.interests().empty());
  profile.SetInterest(2, -1.0);
  EXPECT_TRUE(profile.interests().empty());
}

TEST(UserProfileTest, NormalizeSumsToOne) {
  UserProfile profile("u");
  profile.SetInterest(0, 2.0);
  profile.SetInterest(1, 6.0);
  profile.Normalize();
  EXPECT_DOUBLE_EQ(profile.Interest(0), 0.25);
  EXPECT_DOUBLE_EQ(profile.Interest(1), 0.75);
  UserProfile empty("e");
  empty.Normalize();  // must not crash
  EXPECT_TRUE(empty.interests().empty());
}

TEST(UserProfileTest, ReinforceAccumulates) {
  UserProfile profile("u");
  profile.Reinforce(3, 0.5);
  profile.Reinforce(3, 0.5);
  EXPECT_DOUBLE_EQ(profile.Interest(3), 1.0);
  profile.Reinforce(3, -0.5);  // ignored
  EXPECT_DOUBLE_EQ(profile.Interest(3), 1.0);
}

TEST(UserProfileTest, DecayShrinksAndPrunes) {
  UserProfile profile("u");
  profile.SetInterest(0, 1.0);
  profile.SetInterest(1, 1e-12);
  profile.Decay(0.5);
  EXPECT_DOUBLE_EQ(profile.Interest(0), 0.5);
  EXPECT_EQ(profile.interests().count(1), 0u);  // pruned
  profile.Decay(0.0);
  EXPECT_TRUE(profile.interests().empty());
}

TEST(UserProfileTest, ShotAffinityPrimaryAndSecondary) {
  UserProfile profile("u");
  profile.SetInterest(0, 1.0);  // only topic 0
  // Shot primarily about topic 0.
  EXPECT_DOUBLE_EQ(profile.ShotAffinity(MakeShot(0, {true, false})), 1.0);
  // Shot about topic 1 with secondary concept 0: half credit.
  EXPECT_DOUBLE_EQ(profile.ShotAffinity(MakeShot(1, {true, true})), 0.5);
  // Unrelated shot.
  EXPECT_DOUBLE_EQ(profile.ShotAffinity(MakeShot(1, {false, true})), 0.0);
}

TEST(UserProfileTest, ShotAffinityEmptyProfileIsZero) {
  const UserProfile profile("u");
  EXPECT_DOUBLE_EQ(profile.ShotAffinity(MakeShot(0, {true})), 0.0);
}

TEST(UserProfileTest, ShotAffinityNormalizedByTotalInterest) {
  UserProfile profile("u");
  profile.SetInterest(0, 1.0);
  profile.SetInterest(1, 3.0);
  // Affinity of a topic-0 shot = 1/4.
  EXPECT_DOUBLE_EQ(profile.ShotAffinity(MakeShot(0, {true, false})), 0.25);
}

TEST(UserProfileTest, SerializeRoundTrip) {
  UserProfile profile("bob");
  profile.SetInterest(2, 0.75);
  profile.SetInterest(0, 0.25);
  const std::string line = profile.Serialize();
  const UserProfile parsed = UserProfile::Deserialize(line).value();
  EXPECT_EQ(parsed.user_id(), "bob");
  EXPECT_DOUBLE_EQ(parsed.Interest(0), 0.25);
  EXPECT_DOUBLE_EQ(parsed.Interest(2), 0.75);
}

TEST(UserProfileTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(UserProfile::Deserialize("").status().IsCorruption());
  EXPECT_TRUE(
      UserProfile::Deserialize("u\tnotkv").status().IsCorruption());
  EXPECT_TRUE(
      UserProfile::Deserialize("u\tx:1").status().IsInvalidArgument());
  EXPECT_TRUE(
      UserProfile::Deserialize("u\t-1:0.5").status().IsCorruption());
}

TEST(UserProfileTest, DeserializeEmptyInterests) {
  const UserProfile parsed = UserProfile::Deserialize("carol\t").value();
  EXPECT_EQ(parsed.user_id(), "carol");
  EXPECT_TRUE(parsed.interests().empty());
}

TEST(ProfileStoreTest, AddGetContains) {
  ProfileStore store;
  UserProfile p("alice");
  p.SetInterest(1, 0.5);
  ASSERT_TRUE(store.Add(p).ok());
  EXPECT_TRUE(store.Contains("alice"));
  EXPECT_FALSE(store.Contains("bob"));
  EXPECT_DOUBLE_EQ(store.Get("alice").value()->Interest(1), 0.5);
  EXPECT_TRUE(store.Get("bob").status().IsNotFound());
}

TEST(ProfileStoreTest, AddRejectsDuplicatesAndEmptyIds) {
  ProfileStore store;
  ASSERT_TRUE(store.Add(UserProfile("alice")).ok());
  EXPECT_TRUE(store.Add(UserProfile("alice")).IsAlreadyExists());
  EXPECT_TRUE(store.Add(UserProfile("")).IsInvalidArgument());
}

TEST(ProfileStoreTest, GetOrCreateRegistersOnFirstUse) {
  ProfileStore store;
  UserProfile* p = store.GetOrCreate("dave");
  ASSERT_NE(p, nullptr);
  p->SetInterest(0, 1.0);
  EXPECT_EQ(store.GetOrCreate("dave"), p);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(store.Get("dave").value()->Interest(0), 1.0);
}

TEST(ProfileStoreTest, SerializeRoundTrip) {
  ProfileStore store;
  UserProfile a("alice");
  a.SetInterest(1, 0.9);
  UserProfile b("bob");
  b.SetInterest(2, 0.4);
  ASSERT_TRUE(store.Add(a).ok());
  ASSERT_TRUE(store.Add(b).ok());
  const ProfileStore parsed =
      ProfileStore::Deserialize(store.Serialize()).value();
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.Get("alice").value()->Interest(1), 0.9);
  EXPECT_DOUBLE_EQ(parsed.Get("bob").value()->Interest(2), 0.4);
}

}  // namespace
}  // namespace ivr
