#include "ivr/text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

struct StemCase {
  const char* input;
  const char* expected;
};

// Reference pairs from Porter's published examples and the classic
// test vocabulary.
class PorterStemKnownPairs : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemKnownPairs, StemsAsReference) {
  const StemCase& c = GetParam();
  EXPECT_EQ(PorterStem(c.input), c.expected) << "input=" << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Classic, PorterStemKnownPairs,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti",
                                                    "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti",
                                                  "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous",
                                                    "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize",
                                                  "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemTest, StableFixedPoints) {
  // Porter is famously not idempotent in general (television -> televis ->
  // televi), but these stems are fixed points and must stay stable.
  const char* words[] = {"retriev", "implicit", "feedback",
                         "video",   "goal",     "weather"};
  for (const char* w : words) {
    EXPECT_EQ(PorterStem(w), w) << "word=" << w;
  }
}

TEST(PorterStemTest, RelatedFormsConflate) {
  EXPECT_EQ(PorterStem("retrieval"), PorterStem("retrieval"));
  EXPECT_EQ(PorterStem("connected"), PorterStem("connecting"));
  EXPECT_EQ(PorterStem("connection"), PorterStem("connections"));
  EXPECT_EQ(PorterStem("relate"), PorterStem("related"));
}

}  // namespace
}  // namespace ivr
