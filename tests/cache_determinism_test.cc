// The cache's hard guarantee, swept end to end: serving with a result
// cache attached — cold, warm, under concurrency, and beneath adaptive
// per-session re-ranking — is bit-identical to uncached serving. Also
// the TSan workload for the cache: many threads hammer one shared cache
// (and therefore share ResultLists) while it evicts under pressure.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/string_util.h"
#include "ivr/retrieval/engine.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

std::string Fingerprint(const ResultList& list) {
  std::string out;
  for (const RankedShot& entry : list.items()) {
    out += StrFormat("%u:%.17g ", entry.shot, entry.score);
  }
  return out;
}

class CacheDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 77;
    options.num_topics = 5;
    options.num_videos = 10;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    uncached_ = RetrievalEngine::Build(generated_->collection).value();
    cached_ = RetrievalEngine::Build(generated_->collection).value();
    cache_ = std::make_shared<ResultCache>();
    cached_->AttachCache(cache_);
  }

  std::vector<Query> TopicQueries(bool visual) const {
    std::vector<Query> queries;
    for (const SearchTopic& topic : generated_->topics.topics) {
      Query query;
      query.text = topic.title;
      if (visual) query.examples = topic.examples;
      queries.push_back(std::move(query));
    }
    return queries;
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> uncached_;
  std::unique_ptr<RetrievalEngine> cached_;
  std::shared_ptr<ResultCache> cache_;
};

TEST_F(CacheDeterminismTest, ColdAndWarmServingMatchUncachedBitForBit) {
  for (const bool visual : {false, true}) {
    for (const size_t k : {10u, 100u, 1000u}) {
      for (const Query& query : TopicQueries(visual)) {
        const ResultList reference = uncached_->Search(query, k);
        const ResultList cold = cached_->Search(query, k);
        const ResultList warm = cached_->Search(query, k);
        EXPECT_EQ(Fingerprint(reference), Fingerprint(cold))
            << "cold, k=" << k << " visual=" << visual;
        EXPECT_EQ(Fingerprint(reference), Fingerprint(warm))
            << "warm, k=" << k << " visual=" << visual;
      }
    }
  }
  EXPECT_GT(cache_->Stats().hits, 0u);
  EXPECT_GT(cache_->Stats().insertions, 0u);
}

TEST_F(CacheDeterminismTest, BatchSearchMatchesUncached) {
  const std::vector<Query> queries = TopicQueries(true);
  const std::vector<ResultList> reference =
      uncached_->BatchSearch(queries, 200, 4);
  // Twice: the first run fills the cache, the second serves from it.
  for (int round = 0; round < 2; ++round) {
    const std::vector<ResultList> cached =
        cached_->BatchSearch(queries, 200, 4);
    ASSERT_EQ(reference.size(), cached.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(Fingerprint(reference[i]), Fingerprint(cached[i]))
          << "query " << i << " round " << round;
    }
  }
}

TEST_F(CacheDeterminismTest, PerModalityPathsMatchUncached) {
  const TermQuery terms =
      uncached_->ParseText(generated_->topics.topics[0].title);
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(Fingerprint(uncached_->SearchTerms(terms, 64)),
              Fingerprint(cached_->SearchTerms(terms, 64)));
  }
  const ColorHistogram& example =
      generated_->topics.topics[0].examples.front();
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(Fingerprint(uncached_->SearchVisual(example, 64)),
              Fingerprint(cached_->SearchVisual(example, 64)));
  }
}

TEST_F(CacheDeterminismTest, AdaptiveSessionsMatchUncachedBackend) {
  // Sessions re-rank per user on top of the shared base ranking; with the
  // base cache beneath one backend and not the other, every session's
  // served rankings must still agree bit for bit.
  const SessionSimulator simulator(generated_->collection,
                                   generated_->qrels);
  const UserModel user = NoviceUser();
  for (size_t j = 0; j < 6; ++j) {
    const SearchTopic& topic =
        generated_->topics.topics[j % generated_->topics.topics.size()];
    SessionSimulator::RunConfig config;
    config.seed = 500 + j * 17;
    config.session_id = "cache-det-" + std::to_string(j);
    config.user_id = "u" + std::to_string(j % 2);

    AdaptiveEngine uncached_backend(*uncached_, AdaptiveOptions(), nullptr);
    Result<SimulatedSession> reference =
        simulator.Run(&uncached_backend, topic, user, config, nullptr);
    ASSERT_TRUE(reference.ok());

    AdaptiveEngine cached_backend(*cached_, AdaptiveOptions(), nullptr);
    Result<SimulatedSession> session =
        simulator.Run(&cached_backend, topic, user, config, nullptr);
    ASSERT_TRUE(session.ok());

    ASSERT_EQ(reference->outcome.per_query_results.size(),
              session->outcome.per_query_results.size());
    for (size_t q = 0; q < reference->outcome.per_query_results.size();
         ++q) {
      EXPECT_EQ(Fingerprint(reference->outcome.per_query_results[q]),
                Fingerprint(session->outcome.per_query_results[q]))
          << "session " << j << " query " << q;
    }
  }
  EXPECT_GT(cache_->Stats().hits, 0u)
      << "adaptive sessions never hit the shared base cache";
}

TEST_F(CacheDeterminismTest, ConcurrentHammerStaysBitIdentical) {
  // Many threads, one cache, eviction pressure from a small budget:
  // every thread must read exactly the uncached ranking for its query.
  // (TSan target: shared ResultLists + shard locks + LRU splicing.)
  ResultCacheOptions small;
  small.max_bytes = 64 * 1024;
  small.num_shards = 4;
  auto pressured = std::make_shared<ResultCache>(small);
  std::unique_ptr<RetrievalEngine> engine =
      RetrievalEngine::Build(generated_->collection).value();
  engine->AttachCache(pressured);

  const std::vector<Query> queries = TopicQueries(true);
  std::vector<std::string> reference;
  reference.reserve(queries.size());
  for (const Query& query : queries) {
    reference.push_back(Fingerprint(uncached_->Search(query, 100)));
  }

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 25;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        const size_t i = (t + r) % queries.size();
        if (Fingerprint(engine->Search(queries[i], 100)) != reference[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(pressured->Stats().hits, 0u);
}

}  // namespace
}  // namespace ivr
