// Regression test for the Health() data race: the degraded-mode counters
// (SessionContext::feedback_skipped / profile_reranks_skipped and the
// adapter's implicit_session_opens_) used to be plain uint64_t mutated on
// the session's thread while Health() snapshotted them from a monitoring
// thread. They are obs::RelaxedU64 now; this file hammers exactly that
// writer/reader pair and is part of the tsan preset, which is what
// actually enforces the fix.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/fault_injection.h"
#include "ivr/service/session_manager.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class HealthAtomicsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 31;
    options.num_topics = 3;
    options.num_videos = 6;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
  }

  Query TopicQuery() const {
    Query query;
    query.text = generated_->topics.topics[0].title;
    return query;
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
};

TEST_F(HealthAtomicsTest, AdapterHealthWhileSearchingIsRaceFree) {
  // Probability-1 faults on both personalisation steps: every Search
  // increments feedback_skipped and profile_reranks_skipped — the exact
  // counters Health() snapshots — and never touches the evidence cache,
  // so the counters are the only state the two threads share.
  ScopedFaultInjection chaos("adaptive.feedback:1,adaptive.profile:1", 3);
  ASSERT_TRUE(chaos.status().ok());

  UserProfile profile("racer");
  profile.SetInterest(/*topic=*/0, 1.0);
  AdaptiveOptions options;
  options.use_profile = true;
  AdaptiveEngine adaptive(*engine_, options, &profile);
  adaptive.BeginSession();

  constexpr int kIterations = 400;
  std::thread monitor([&adaptive] {
    for (int i = 0; i < kIterations; ++i) {
      const HealthReport report = adaptive.Health();
      (void)report.feedback_skipped;
      (void)report.profile_reranks_skipped;
    }
  });
  const Query query = TopicQuery();
  for (int i = 0; i < kIterations; ++i) {
    (void)adaptive.Search(query, 10);
  }
  monitor.join();

  const HealthReport report = adaptive.Health();
  EXPECT_EQ(report.feedback_skipped, static_cast<uint64_t>(kIterations));
  EXPECT_EQ(report.profile_reranks_skipped,
            static_cast<uint64_t>(kIterations));
  EXPECT_TRUE(report.degraded());
}

TEST_F(HealthAtomicsTest, ImplicitSessionOpenWhileHealthIsRaceFree) {
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  InteractionEvent event;
  event.type = EventType::kSessionEnd;

  constexpr int kIterations = 200;
  std::thread monitor([&adaptive] {
    for (int i = 0; i < kIterations; ++i) {
      (void)adaptive.implicit_session_opens();
    }
  });
  // BeginSession is never called, so the first ObserveEvent lazily opens
  // a session and increments the counter while the monitor thread reads
  // it; the searches keep the session thread busy around that write.
  for (int i = 0; i < kIterations; ++i) {
    (void)adaptive.Search(TopicQuery(), 5);
    if (i == kIterations / 2) adaptive.ObserveEvent(event);
  }
  monitor.join();
  EXPECT_EQ(adaptive.implicit_session_opens(), 1u);
}

TEST_F(HealthAtomicsTest, ManagerHealthWhileServingIsRaceFree) {
  ScopedFaultInjection chaos("adaptive.feedback:1", 9);
  ASSERT_TRUE(chaos.status().ok());
  const AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  SessionManager manager(adaptive, SessionManagerOptions());
  ASSERT_TRUE(manager.BeginSession("race", "user").ok());

  constexpr int kIterations = 300;
  std::thread monitor([&manager] {
    for (int i = 0; i < kIterations; ++i) {
      const HealthReport report = manager.Health();
      (void)report.feedback_skipped;
      (void)report.sessions_active;
    }
  });
  const Query query = TopicQuery();
  InteractionEvent click;
  click.type = EventType::kClickKeyframe;
  click.shot = 0;
  for (int i = 0; i < kIterations; ++i) {
    ASSERT_TRUE(manager.Search("race", query, 10).ok());
    ASSERT_TRUE(manager.ObserveEvent("race", click).ok());
  }
  monitor.join();

  const HealthReport report = manager.Health();
  EXPECT_EQ(report.feedback_skipped, static_cast<uint64_t>(kIterations));
  EXPECT_EQ(report.sessions_active, 1u);
}

}  // namespace
}  // namespace ivr
