// The serving contract of the HTTP front-end: a ranking served over
// ivr_httpd's wire format is bit-identical to the same session calling
// SessionManager directly — concurrently, cache-warm, and in degraded
// (fault-injected) mode. Scores cross the wire as %.17g text, which
// round-trips IEEE doubles exactly, so plain string comparison below IS
// bit comparison.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/string_util.h"
#include "ivr/net/http_client.h"
#include "ivr/net/http_server.h"
#include "ivr/net/json.h"
#include "ivr/net/service_handler.h"
#include "ivr/retrieval/engine.h"
#include "ivr/service/session_manager.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace net {
namespace {

constexpr size_t kSessions = 6;
constexpr size_t kQueries = 4;
constexpr size_t kTopK = 10;

std::string SessionId(size_t j) { return StrFormat("eq-s%zu", j); }

std::string QueryTextFor(const GeneratedCollection& g, size_t j, size_t q) {
  const auto& topics = g.topics.topics;
  return topics[(j * kQueries + q) % topics.size()].title;
}

/// The per-search feedback event both paths emit: a click on `shot` at a
/// deterministic time. Field-for-field what ServiceHandler decodes from
/// the JSON the HTTP path sends.
InteractionEvent ClickEvent(const std::string& session_id, ShotId shot,
                            size_t j, size_t q) {
  InteractionEvent event;
  event.type = EventType::kClickKeyframe;
  event.session_id = session_id;
  event.shot = shot;
  event.time = static_cast<TimeMs>(j * 100 + q);
  return event;
}

/// Drives session j's whole lifecycle over HTTP and returns its ranking
/// signature: one "q<i> shot:score ..." line per query.
std::string DriveSessionHttp(HttpClient* client,
                             const GeneratedCollection& g, size_t j) {
  const std::string session_id = SessionId(j);
  Result<HttpClientResponse> response = client->Post(
      "/v1/session/open",
      StrFormat("{\"session_id\": %s}", JsonQuote(session_id).c_str()));
  EXPECT_TRUE(response.ok() && response->status == 200);
  std::string signature;
  for (size_t q = 0; q < kQueries; ++q) {
    response = client->Post(
        "/v1/search",
        StrFormat("{\"session_id\": %s, \"query\": {\"text\": %s}, "
                  "\"k\": %zu}",
                  JsonQuote(session_id).c_str(),
                  JsonQuote(QueryTextFor(g, j, q)).c_str(), kTopK));
    if (!response.ok() || response->status != 200) {
      ADD_FAILURE() << "search failed: "
                    << (response.ok() ? response->body
                                      : response.status().ToString());
      return signature;
    }
    const Result<JsonValue> body = JsonValue::Parse(response->body);
    EXPECT_TRUE(body.ok());
    std::string line = StrFormat("q%zu", q);
    long long top_shot = -1;
    const JsonValue* results = body->Find("results");
    if (results != nullptr) {
      for (const JsonValue& entry : results->items()) {
        const unsigned shot =
            static_cast<unsigned>(entry.Find("shot")->number_value());
        if (top_shot < 0) top_shot = shot;
        line += StrFormat(" %u:%.17g", shot,
                          entry.Find("score")->number_value());
      }
    }
    signature += line + "\n";
    if (top_shot >= 0) {
      response = client->Post(
          "/v1/feedback",
          StrFormat("{\"session_id\": %s, \"event\": "
                    "{\"type\": \"click_keyframe\", \"shot\": %lld, "
                    "\"time\": %zu}}",
                    JsonQuote(session_id).c_str(), top_shot,
                    j * 100 + q));
      EXPECT_TRUE(response.ok() && response->status == 200);
    }
  }
  response = client->Post(
      "/v1/session/close",
      StrFormat("{\"session_id\": %s}", JsonQuote(session_id).c_str()));
  EXPECT_TRUE(response.ok() && response->status == 200);
  return signature;
}

/// The same lifecycle via direct SessionManager calls.
std::string DriveSessionDirect(SessionManager* manager,
                               const GeneratedCollection& g, size_t j) {
  const std::string session_id = SessionId(j);
  EXPECT_TRUE(manager->BeginSession(session_id, "").ok());
  std::string signature;
  for (size_t q = 0; q < kQueries; ++q) {
    Query query;
    query.text = QueryTextFor(g, j, q);
    const Result<ResultList> results =
        manager->Search(session_id, query, kTopK);
    if (!results.ok()) {
      ADD_FAILURE() << results.status().ToString();
      return signature;
    }
    std::string line = StrFormat("q%zu", q);
    for (const RankedShot& entry : results->items()) {
      line += StrFormat(" %u:%.17g", static_cast<unsigned>(entry.shot),
                        entry.score);
    }
    signature += line + "\n";
    if (results->size() > 0) {
      EXPECT_TRUE(
          manager
              ->ObserveEvent(session_id,
                             ClickEvent(session_id, results->at(0).shot, j,
                                        q))
              .ok());
    }
  }
  EXPECT_TRUE(manager->EndSession(session_id).ok());
  return signature;
}

/// Runs every session over HTTP on `threads` client threads (each session
/// driven end to end by one thread) and returns signatures in session
/// order.
std::vector<std::string> RunHttpWorkload(int port,
                                         const GeneratedCollection& g,
                                         size_t threads) {
  std::vector<std::string> signatures(kSessions);
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    for (size_t j = next++; j < kSessions; j = next++) {
      signatures[j] = DriveSessionHttp(&client, g, j);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return signatures;
}

std::vector<std::string> RunDirectWorkload(SessionManager* manager,
                                           const GeneratedCollection& g) {
  std::vector<std::string> signatures(kSessions);
  for (size_t j = 0; j < kSessions; ++j) {
    signatures[j] = DriveSessionDirect(manager, g, j);
  }
  return signatures;
}

class HttpEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 8;
    options.num_topics = 5;
    g_ = new GeneratedCollection(GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(g_->collection).value().release();
    adaptive_ = new AdaptiveEngine(*engine_, AdaptiveOptions(), nullptr);
  }

  /// Serves `manager` on an ephemeral port; returns the port.
  int Serve(SessionManager* manager) {
    handler_ = std::make_unique<ServiceHandler>(manager);
    HttpServerOptions options;
    options.num_workers = 3;
    server_ = std::make_unique<HttpServer>(
        options, [this](const HttpRequest& request) {
          return handler_->Handle(request);
        });
    EXPECT_TRUE(server_->Start().ok());
    return server_->port();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    FaultInjector::Global().Disable();
  }

  static GeneratedCollection* g_;
  static RetrievalEngine* engine_;
  static AdaptiveEngine* adaptive_;
  std::unique_ptr<ServiceHandler> handler_;
  std::unique_ptr<HttpServer> server_;
};

GeneratedCollection* HttpEquivalenceTest::g_ = nullptr;
RetrievalEngine* HttpEquivalenceTest::engine_ = nullptr;
AdaptiveEngine* HttpEquivalenceTest::adaptive_ = nullptr;

TEST_F(HttpEquivalenceTest, ConcurrentHttpMatchesDirectBitForBit) {
  SessionManager http_manager(*adaptive_, SessionManagerOptions());
  const int port = Serve(&http_manager);
  const std::vector<std::string> http_sigs =
      RunHttpWorkload(port, *g_, /*threads=*/3);

  SessionManager direct_manager(*adaptive_, SessionManagerOptions());
  const std::vector<std::string> direct_sigs =
      RunDirectWorkload(&direct_manager, *g_);

  for (size_t j = 0; j < kSessions; ++j) {
    EXPECT_FALSE(http_sigs[j].empty());
    EXPECT_EQ(http_sigs[j], direct_sigs[j]) << "session " << j;
  }
}

TEST_F(HttpEquivalenceTest, CacheWarmServingStaysBitIdentical) {
  // A dedicated engine so the shared result cache is this test's own:
  // the concurrent HTTP run warms it, the direct run then serves from it.
  auto cached_engine = RetrievalEngine::Build(g_->collection).value();
  ResultCacheOptions cache_options;
  cache_options.max_bytes = 4u << 20;
  auto cache = std::make_shared<ResultCache>(cache_options);
  cached_engine->AttachCache(cache);
  const AdaptiveEngine adaptive(*cached_engine, AdaptiveOptions(), nullptr);

  SessionManager http_manager(adaptive, SessionManagerOptions());
  const int port = Serve(&http_manager);
  const std::vector<std::string> http_sigs =
      RunHttpWorkload(port, *g_, /*threads=*/3);
  EXPECT_GT(cache->Stats().entries, 0u);

  SessionManager direct_manager(adaptive, SessionManagerOptions());
  const std::vector<std::string> direct_sigs =
      RunDirectWorkload(&direct_manager, *g_);

  for (size_t j = 0; j < kSessions; ++j) {
    EXPECT_FALSE(http_sigs[j].empty());
    EXPECT_EQ(http_sigs[j], direct_sigs[j]) << "cache-warm session " << j;
  }
}

TEST_F(HttpEquivalenceTest, DegradedModalityServingMatchesOverHttp) {
  // Sequential on both sides with the injector re-armed (same spec, same
  // seed) between phases: per-site fault ordinals reset, so consult #n of
  // "adaptive.feedback" (the degradation site on the serving path — a
  // faulted feedback backend serves the unexpanded query) fires
  // identically in both runs, and even the DEGRADED rankings must match
  // bit for bit. Uses the uncached engine so the ranking work itself is
  // recomputed, not replayed.
  constexpr const char* kSpec = "adaptive.feedback:0.4";
  constexpr uint64_t kSeed = 99;

  ASSERT_TRUE(FaultInjector::Global().Configure(kSpec, kSeed).ok());
  SessionManager http_manager(*adaptive_, SessionManagerOptions());
  const int port = Serve(&http_manager);
  const std::vector<std::string> http_sigs =
      RunHttpWorkload(port, *g_, /*threads=*/1);
  server_->Stop();
  server_.reset();
  EXPECT_GT(FaultInjector::Global().num_injected(), 0u)
      << "fault spec never fired; the degraded case was not exercised\n"
      << FaultInjector::Global().Summary();

  ASSERT_TRUE(FaultInjector::Global().Configure(kSpec, kSeed).ok());
  SessionManager direct_manager(*adaptive_, SessionManagerOptions());
  const std::vector<std::string> direct_sigs =
      RunDirectWorkload(&direct_manager, *g_);
  FaultInjector::Global().Disable();

  for (size_t j = 0; j < kSessions; ++j) {
    EXPECT_EQ(http_sigs[j], direct_sigs[j]) << "degraded session " << j;
  }
}

}  // namespace
}  // namespace net
}  // namespace ivr
