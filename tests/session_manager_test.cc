#include "ivr/service/session_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/service/managed_backend.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class SessionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 77;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    adaptive_ = std::make_unique<AdaptiveEngine>(
        *engine_, AdaptiveOptions(), nullptr);
  }

  Query TopicQuery(size_t i = 0) const {
    Query query;
    query.text = generated_->topics.topics[i].title;
    return query;
  }

  static InteractionEvent Click(ShotId shot, TimeMs time = 0) {
    InteractionEvent event;
    event.time = time;
    event.type = EventType::kClickKeyframe;
    event.shot = shot;
    return event;
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<AdaptiveEngine> adaptive_;
};

TEST_F(SessionManagerTest, BeginSearchEndLifecycle) {
  SessionManager manager(*adaptive_, SessionManagerOptions());
  ASSERT_TRUE(manager.BeginSession("s1", "u1").ok());
  EXPECT_TRUE(manager.Contains("s1"));
  EXPECT_EQ(manager.num_active(), 1u);

  const Result<ResultList> results = manager.Search("s1", TopicQuery(), 10);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());

  ASSERT_TRUE(manager.EndSession("s1").ok());
  EXPECT_FALSE(manager.Contains("s1"));
  EXPECT_EQ(manager.num_active(), 0u);
  const SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.begun, 1u);
  EXPECT_EQ(stats.ended, 1u);
}

TEST_F(SessionManagerTest, DuplicateBeginRejected) {
  SessionManager manager(*adaptive_, SessionManagerOptions());
  ASSERT_TRUE(manager.BeginSession("s1", "u1").ok());
  EXPECT_TRUE(manager.BeginSession("s1", "u2").IsAlreadyExists());
  EXPECT_EQ(manager.Stats().rejected_ops, 1u);
}

TEST_F(SessionManagerTest, OpsOnUnknownSessionRejected) {
  // The satellite-6 manager path: no implicit opening at the service
  // layer, unlike the single-session adapter.
  SessionManager manager(*adaptive_, SessionManagerOptions());
  EXPECT_TRUE(manager.Search("ghost", TopicQuery(), 10)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(manager.ObserveEvent("ghost", Click(0)).IsNotFound());
  EXPECT_TRUE(manager.EndSession("ghost").IsNotFound());
  EXPECT_EQ(manager.Stats().rejected_ops, 3u);
}

TEST_F(SessionManagerTest, FeedbackIsPerSession) {
  SessionManager manager(*adaptive_, SessionManagerOptions());
  ASSERT_TRUE(manager.BeginSession("engaged", "u1").ok());
  ASSERT_TRUE(manager.BeginSession("fresh", "u2").ok());

  const ShotId relevant =
      generated_->qrels.RelevantShots(generated_->topics.topics[0].id, 2)
          .at(0);
  ASSERT_TRUE(manager.ObserveEvent("engaged", Click(relevant)).ok());

  // The fresh session must keep serving the unadapted ranking.
  const ResultList base = engine_->Search(TopicQuery(), 20);
  const ResultList from_fresh =
      manager.Search("fresh", TopicQuery(), 20).value();
  ASSERT_EQ(base.size(), from_fresh.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.at(i).shot, from_fresh.at(i).shot);
  }
}

TEST_F(SessionManagerTest, CapacityEvictsLeastRecentlyUsed) {
  SessionManagerOptions options;
  options.num_shards = 1;  // deterministic placement
  options.max_sessions = 2;
  SessionManager manager(*adaptive_, options);
  ASSERT_TRUE(manager.BeginSession("old", "u").ok());
  ASSERT_TRUE(manager.BeginSession("hot", "u").ok());
  // Touch "hot" so "old" is the LRU victim.
  ASSERT_TRUE(manager.ObserveEvent("hot", Click(0)).ok());

  ASSERT_TRUE(manager.BeginSession("new", "u").ok());
  EXPECT_FALSE(manager.Contains("old"));
  EXPECT_TRUE(manager.Contains("hot"));
  EXPECT_TRUE(manager.Contains("new"));
  const SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.evicted_capacity, 1u);
  // Post-eviction ops on the victim are rejected, not resurrected.
  EXPECT_TRUE(manager.ObserveEvent("old", Click(1)).IsNotFound());
}

TEST_F(SessionManagerTest, TtlEvictsIdleSessions) {
  TimeMs now = 0;
  SessionManagerOptions options;
  options.idle_ttl_ms = 1000;
  options.clock = [&now] { return now; };
  SessionManager manager(*adaptive_, options);
  ASSERT_TRUE(manager.BeginSession("idle", "u").ok());
  now = 500;
  ASSERT_TRUE(manager.BeginSession("busy", "u").ok());
  now = 1200;  // "idle" is 1200ms idle, "busy" only 700ms
  EXPECT_EQ(manager.EvictIdleSessions(), 1u);
  EXPECT_FALSE(manager.Contains("idle"));
  EXPECT_TRUE(manager.Contains("busy"));
  EXPECT_EQ(manager.Stats().evicted_idle, 1u);
}

TEST_F(SessionManagerTest, EvictionPersistsSessionLog) {
  const std::string dir = ::testing::TempDir() + "/ivr_persist_evict";
  SessionManagerOptions options;
  options.num_shards = 1;
  options.max_sessions = 1;
  options.persist_dir = dir;
  SessionManager manager(*adaptive_, options);
  ASSERT_TRUE(manager.BeginSession("victim", "u").ok());
  ASSERT_TRUE(manager.ObserveEvent("victim", Click(3, 10)).ok());
  ASSERT_TRUE(manager.ObserveEvent("victim", Click(4, 20)).ok());

  ASSERT_TRUE(manager.BeginSession("usurper", "u").ok());  // evicts
  const SessionLog log =
      SessionLog::Load(dir + "/victim.log").value();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].shot, 3u);
  EXPECT_EQ(log.events()[1].shot, 4u);
  EXPECT_EQ(manager.Stats().events_persisted, 2u);
  (void)RemoveFile(dir + "/victim.log");
}

TEST_F(SessionManagerTest, PeriodicPersistenceIsIncremental) {
  const std::string dir = ::testing::TempDir() + "/ivr_persist_period";
  SessionManagerOptions options;
  options.persist_dir = dir;
  options.persist_every_events = 2;
  SessionManager manager(*adaptive_, options);
  ASSERT_TRUE(manager.BeginSession("s", "u").ok());
  ASSERT_TRUE(manager.ObserveEvent("s", Click(1, 10)).ok());
  EXPECT_EQ(manager.Stats().events_persisted, 0u);  // below threshold
  ASSERT_TRUE(manager.ObserveEvent("s", Click(2, 20)).ok());
  EXPECT_EQ(manager.Stats().events_persisted, 2u);  // flushed
  ASSERT_TRUE(manager.ObserveEvent("s", Click(3, 30)).ok());
  ASSERT_TRUE(manager.EndSession("s").ok());
  // End flushes only the O(new events) tail; total equals the event count
  // and the journal replays completely.
  EXPECT_EQ(manager.Stats().events_persisted, 3u);
  EXPECT_EQ(SessionLog::Load(dir + "/s.log").value().size(), 3u);
  (void)RemoveFile(dir + "/s.log");
}

TEST_F(SessionManagerTest, EndSessionSurvivesPersistFault) {
  const std::string dir = ::testing::TempDir() + "/ivr_persist_fault";
  SessionManagerOptions options;
  options.persist_dir = dir;
  SessionManager manager(*adaptive_, options);
  ASSERT_TRUE(manager.BeginSession("s", "u").ok());
  ASSERT_TRUE(manager.ObserveEvent("s", Click(1)).ok());
  {
    ScopedFaultInjection chaos("service.persist:1.0", 3);
    // Graceful degradation: the session still ends, the failure is
    // counted and surfaces through Health().
    EXPECT_TRUE(manager.EndSession("s").ok());
  }
  EXPECT_FALSE(manager.Contains("s"));
  const SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.persist_failures, 1u);
  EXPECT_EQ(stats.events_persisted, 0u);
  const HealthReport health = manager.Health();
  EXPECT_TRUE(health.degraded());
  EXPECT_EQ(health.session_persist_failures, 1u);
}

TEST_F(SessionManagerTest, EvictFaultKeepsVictimResident) {
  SessionManagerOptions options;
  options.num_shards = 1;
  options.max_sessions = 1;
  SessionManager manager(*adaptive_, options);
  ASSERT_TRUE(manager.BeginSession("resident", "u").ok());
  {
    ScopedFaultInjection chaos("service.evict:1.0", 3);
    ASSERT_TRUE(manager.BeginSession("extra", "u").ok());
  }
  // The faulted eviction degraded to running over capacity — nobody was
  // dropped and the skip was counted.
  EXPECT_TRUE(manager.Contains("resident"));
  EXPECT_TRUE(manager.Contains("extra"));
  EXPECT_EQ(manager.num_active(), 2u);
  const SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.evictions_skipped, 1u);
  EXPECT_EQ(stats.evicted_capacity, 0u);
}

TEST_F(SessionManagerTest, ProfileSnapshotTakenAtBegin) {
  AdaptiveOptions adaptive_options;
  adaptive_options.use_profile = true;
  adaptive_options.profile_lambda = 0.9;
  const AdaptiveEngine engine(*engine_, adaptive_options, nullptr);

  SessionManager manager(engine, SessionManagerOptions());
  UserProfile profile("fan");
  profile.SetInterest(generated_->topics.topics[1].target_topic, 1.0);
  ASSERT_TRUE(manager.AddProfile(profile).ok());
  EXPECT_TRUE(manager.AddProfile(profile).IsAlreadyExists());

  ASSERT_TRUE(manager.BeginSession("s", "fan").ok());
  // A user without a registered profile still gets a session, reported
  // as profiles-unavailable under use_profile.
  ASSERT_TRUE(manager.BeginSession("anon", "nobody").ok());
  EXPECT_FALSE(manager.Health().profile_available);
  ASSERT_TRUE(manager.EndSession("anon").ok());
  EXPECT_TRUE(manager.Health().profile_available);
}

TEST_F(SessionManagerTest, HealthAggregatesLiveSessions) {
  SessionManager manager(*adaptive_, SessionManagerOptions());
  ASSERT_TRUE(manager.BeginSession("a", "u").ok());
  ASSERT_TRUE(manager.BeginSession("b", "u").ok());
  const HealthReport health = manager.Health();
  EXPECT_EQ(health.sessions_active, 2u);
  EXPECT_EQ(health.sessions_evicted, 0u);
  // No service-layer degradation signal (the process-lifetime
  // faults_injected counter may be non-zero from other tests).
  EXPECT_EQ(health.session_persist_failures, 0u);
  EXPECT_TRUE(health.profile_available);
  EXPECT_EQ(health.feedback_skipped, 0u);
}

TEST_F(SessionManagerTest, ManagedBackendDrivesOneSession) {
  SessionManager manager(*adaptive_, SessionManagerOptions());
  {
    ManagedSessionBackend backend(&manager, "mb", "u");
    backend.BeginSession();
    ASSERT_TRUE(manager.Contains("mb"));
    EXPECT_FALSE(backend.Search(TopicQuery(), 10).empty());
    backend.ObserveEvent(Click(0));
    EXPECT_EQ(backend.implicit_session_opens(), 0u);
    EXPECT_TRUE(backend.first_error().ok());
  }  // destructor ends the session
  EXPECT_FALSE(manager.Contains("mb"));
}

TEST_F(SessionManagerTest, ManagedBackendLazilyOpensOnStrayEvent) {
  SessionManager manager(*adaptive_, SessionManagerOptions());
  ManagedSessionBackend backend(&manager, "lazy", "u");
  backend.ObserveEvent(Click(0));  // before any BeginSession
  EXPECT_EQ(backend.implicit_session_opens(), 1u);
  EXPECT_TRUE(manager.Contains("lazy"));
  // The manager itself rejected nothing: the adapter opened first.
  EXPECT_EQ(manager.Stats().rejected_ops, 0u);
  ASSERT_TRUE(backend.EndSession().ok());
}

}  // namespace
}  // namespace ivr
