#include "ivr/core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

namespace ivr {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count](size_t) { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count](size_t) { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count](size_t) { count.fetch_add(1); });
  pool.Submit([&count](size_t) { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&](size_t worker) {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(worker);
    });
  }
  pool.Wait();
  ASSERT_FALSE(seen.empty());
  EXPECT_LT(*seen.rbegin(), 3u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count](size_t) { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{0}, size_t{1}, size_t{3}, size_t{8}}) {
    std::vector<std::atomic<int>> hits(123);
    ParallelFor(hits.size(), threads,
                [&hits](size_t i, size_t) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, InlineWhenSingleThreaded) {
  // threads <= 1 must run on the calling thread with worker id 0.
  std::vector<size_t> order;
  ParallelFor(5, 1, [&order](size_t i, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  std::vector<size_t> expected(5);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  ParallelFor(0, 4, [](size_t, size_t) { FAIL(); });
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<int> count{0};
  ParallelFor(2, 16, [&count](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace ivr
