#include "ivr/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ivr/core/thread_pool.h"

namespace ivr {
namespace obs {
namespace {

// Every test registers under its own "test.reg." prefix: the registry is
// process-global and shared with the instrumented production code, so
// names must not collide across tests (registrations are permanent).

TEST(MetricsRegistryTest, CounterIncrementAndReset) {
#ifdef IVR_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAddAndNegative) {
#ifdef IVR_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-20);
  EXPECT_EQ(gauge.value(), -13);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(MetricsRegistryTest, RegistryReturnsStablePointers) {
  Registry& registry = Registry::Global();
  Counter* a = registry.GetCounter("test.reg.stable");
  Counter* b = registry.GetCounter("test.reg.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("test.reg.other"));
  // The three kinds live in separate namespaces: the same name can hold a
  // counter, a gauge and a histogram simultaneously.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("test.reg.stable")),
            static_cast<void*>(a));
  EXPECT_NE(static_cast<void*>(registry.GetHistogram("test.reg.stable")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
#ifdef IVR_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
  Registry& registry = Registry::Global();
  Counter* counter = registry.GetCounter("test.reg.reset_values");
  Gauge* gauge = registry.GetGauge("test.reg.reset_values");
  LatencyHistogram* histogram =
      registry.GetHistogram("test.reg.reset_values");
  counter->Inc(5);
  gauge->Set(-7);
  histogram->Record(123);

  registry.ResetValues();

  // Pointers handed out before the reset stay valid and observe zero.
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(registry.GetCounter("test.reg.reset_values"), counter);
  counter->Inc();
  EXPECT_EQ(counter->value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test.reg.sorted.b");
  registry.GetCounter("test.reg.sorted.a");
  registry.GetCounter("test.reg.sorted.c");
  const RegistrySnapshot snap = registry.TakeSnapshot();
  ASSERT_FALSE(snap.counters.empty());
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
}

TEST(MetricsRegistryTest, HistogramBucketZeroHoldsExactlyZero) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(-5), 0u);  // clamped below
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(0), 0);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesArePowersOfTwo) {
  // Bucket i >= 1 holds [2^(i-1), 2^i - 1]: both edges map to i, and the
  // values immediately outside map to the neighbours.
  for (size_t i = 1; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t lo = LatencyHistogram::BucketLowerBound(i);
    const int64_t hi = LatencyHistogram::BucketUpperBound(i);
    EXPECT_EQ(lo, int64_t{1} << (i - 1)) << "bucket " << i;
    EXPECT_EQ(hi, (int64_t{1} << i) - 1) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(hi), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(hi + 1), i + 1);
  }
}

TEST(MetricsRegistryTest, HistogramLastBucketAbsorbsOverflow) {
  const size_t last = LatencyHistogram::kNumBuckets - 1;
  const int64_t lo = LatencyHistogram::BucketLowerBound(last);
  EXPECT_EQ(LatencyHistogram::BucketIndex(lo), last);
  EXPECT_EQ(LatencyHistogram::BucketIndex(lo * 16), last);
  EXPECT_EQ(LatencyHistogram::BucketIndex(
                std::numeric_limits<int64_t>::max()),
            last);
}

TEST(MetricsRegistryTest, HistogramRecordAndSnapshot) {
#ifdef IVR_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
  LatencyHistogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(100);
  histogram.Record(100);
  histogram.Record(-9);  // clamped to 0

  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 201);
  EXPECT_EQ(snap.max, 100);
  ASSERT_EQ(snap.buckets.size(), LatencyHistogram::kNumBuckets);
  uint64_t total = 0;
  for (uint64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
  EXPECT_EQ(snap.buckets[0], 2u);  // the two zeros
  EXPECT_EQ(snap.buckets[LatencyHistogram::BucketIndex(100)], 2u);

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.Snapshot().max, 0);
}

TEST(MetricsRegistryTest, HistogramQuantileEmptyAndSingle) {
#ifdef IVR_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.Snapshot().Quantile(0.5), 0);
  histogram.Record(300);
  const HistogramSnapshot snap = histogram.Snapshot();
  // The estimate is the upper bound of the bucket holding the value.
  const int64_t expected = LatencyHistogram::BucketUpperBound(
      LatencyHistogram::BucketIndex(300));
  EXPECT_EQ(snap.Quantile(0.0), expected);
  EXPECT_EQ(snap.Quantile(0.5), expected);
  EXPECT_EQ(snap.Quantile(1.0), expected);
}

TEST(MetricsRegistryTest, HistogramMergeFrom) {
#ifdef IVR_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (int64_t v : {0, 3, 17, 100}) {
    a.Record(v);
    combined.Record(v);
  }
  for (int64_t v : {5, 5000, 1 << 20}) {
    b.Record(v);
    combined.Record(v);
  }
  a.MergeFrom(b);
  const HistogramSnapshot merged = a.Snapshot();
  const HistogramSnapshot expected = combined.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(MetricsRegistryTest, SnapshotWhileIncrementingIsSafeAndExact) {
  Registry& registry = Registry::Global();
  Counter* counter = registry.GetCounter("test.reg.concurrent.counter");
  Gauge* gauge = registry.GetGauge("test.reg.concurrent.gauge");
  LatencyHistogram* histogram =
      registry.GetHistogram("test.reg.concurrent.histogram");
  counter->Reset();
  gauge->Reset();
  histogram->Reset();

  constexpr size_t kWriters = 4;
  constexpr uint64_t kIncsPerWriter = 20000;
  {
    // Writers hammer all three metric kinds while the main thread takes
    // snapshots: the tsan preset runs this file, so any non-atomic access
    // on the snapshot path fails the suite.
    ThreadPool pool(kWriters);
    for (size_t w = 0; w < kWriters; ++w) {
      pool.Submit([&](size_t) {
        for (uint64_t i = 0; i < kIncsPerWriter; ++i) {
          counter->Inc();
          gauge->Add(1);
          histogram->Record(static_cast<int64_t>(i % 512));
        }
      });
    }
    for (int i = 0; i < 50; ++i) {
      const RegistrySnapshot snap = registry.TakeSnapshot();
      (void)snap;
    }
    pool.Wait();
  }

#ifndef IVR_OBS_OFF
  EXPECT_EQ(counter->value(), kWriters * kIncsPerWriter);
  EXPECT_EQ(gauge->value(),
            static_cast<int64_t>(kWriters * kIncsPerWriter));
  const HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, kWriters * kIncsPerWriter);
  uint64_t total = 0;
  for (uint64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
#else
  // Compiled-out mode: mutations are no-ops, reads still work.
  EXPECT_EQ(counter->value(), 0u);
#endif
}

}  // namespace
}  // namespace obs
}  // namespace ivr
