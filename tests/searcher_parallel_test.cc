#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/index/searcher.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

// BatchSearch must produce bit-identical rankings to the sequential path
// for any thread count: same docs, same order, same score bits.

class SearcherParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 23;
    options.num_topics = 6;
    options.num_videos = 12;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
  }

  std::vector<TermQuery> TopicTermQueries(const Searcher& searcher) const {
    std::vector<TermQuery> queries;
    for (const SearchTopic& topic : generated_->topics.topics) {
      queries.push_back(searcher.ParseQuery(topic.title));
    }
    // A repeated-term query and an empty query exercise the edge paths.
    queries.push_back(searcher.ParseQuery("news news report"));
    queries.push_back(TermQuery());
    return queries;
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
};

TEST_F(SearcherParallelTest, BatchMatchesSequentialBitwise) {
  const Bm25Scorer scorer;
  const Searcher searcher(engine_->index(), scorer);
  const std::vector<TermQuery> queries = TopicTermQueries(searcher);

  std::vector<std::vector<SearchHit>> sequential;
  for (const TermQuery& q : queries) {
    sequential.push_back(searcher.Search(q, 50));
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    const auto batched = searcher.BatchSearch(queries, 50, threads);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      ASSERT_EQ(batched[i].size(), sequential[i].size())
          << "threads=" << threads << " query=" << i;
      for (size_t j = 0; j < batched[i].size(); ++j) {
        EXPECT_EQ(batched[i][j].doc, sequential[i][j].doc)
            << "threads=" << threads << " query=" << i << " rank=" << j;
        // Bit-identical, not approximately equal.
        EXPECT_EQ(batched[i][j].score, sequential[i][j].score)
            << "threads=" << threads << " query=" << i << " rank=" << j;
      }
    }
  }
}

TEST_F(SearcherParallelTest, EngineBatchMatchesSequential) {
  std::vector<Query> queries;
  for (const SearchTopic& topic : generated_->topics.topics) {
    Query q;
    q.text = topic.title;
    queries.push_back(std::move(q));
  }

  std::vector<ResultList> sequential;
  for (const Query& q : queries) {
    sequential.push_back(engine_->Search(q, 30));
  }

  for (size_t threads : {size_t{1}, size_t{4}}) {
    const std::vector<ResultList> batched =
        engine_->BatchSearch(queries, 30, threads);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      ASSERT_EQ(batched[i].size(), sequential[i].size())
          << "threads=" << threads << " query=" << i;
      for (size_t j = 0; j < batched[i].size(); ++j) {
        EXPECT_EQ(batched[i].at(j).shot, sequential[i].at(j).shot);
        EXPECT_EQ(batched[i].at(j).score, sequential[i].at(j).score);
      }
    }
  }
}

// Stress case for `ctest -L tier1` under IVR_SANITIZE=thread: many small
// queries, more jobs than workers, repeated rounds to shake out races in
// the accumulator reuse and the pool's queue handling.
TEST_F(SearcherParallelTest, RepeatedBatchesAreStableUnderContention) {
  const Bm25Scorer scorer;
  const Searcher searcher(engine_->index(), scorer);
  std::vector<TermQuery> queries;
  for (int round = 0; round < 8; ++round) {
    for (const SearchTopic& topic : generated_->topics.topics) {
      queries.push_back(searcher.ParseQuery(topic.title));
    }
  }

  const auto first = searcher.BatchSearch(queries, 20, 4);
  for (int round = 0; round < 5; ++round) {
    const auto again = searcher.BatchSearch(queries, 20, 4);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i], first[i]) << "round=" << round << " query=" << i;
    }
  }
}

TEST_F(SearcherParallelTest, DegradedQueryCounterAndDiagnostics) {
  // The engine was built without concepts: a concept-bearing query must
  // flag the drop instead of silently returning text-only results.
  Query q;
  q.text = generated_->topics.topics[0].title;
  q.concepts = {1, 2};

  EXPECT_EQ(engine_->num_degraded_queries(), 0u);
  SearchDiagnostics diag;
  const ResultList results = engine_->Search(q, 10, &diag);
  EXPECT_FALSE(results.empty());
  EXPECT_TRUE(diag.concepts_dropped);
  EXPECT_EQ(engine_->num_degraded_queries(), 1u);

  // Text-only query is not degraded.
  SearchDiagnostics clean;
  Query text_only;
  text_only.text = q.text;
  engine_->Search(text_only, 10, &clean);
  EXPECT_FALSE(clean.concepts_dropped);
  EXPECT_EQ(engine_->num_degraded_queries(), 1u);
}

}  // namespace
}  // namespace ivr
