#include "ivr/iface/interface.h"

#include <gtest/gtest.h>

#include "ivr/iface/desktop.h"
#include "ivr/iface/tv.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class InterfaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 21;
    options.num_topics = 4;
    options.num_videos = 10;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    backend_ = std::make_unique<StaticBackend>(*engine_);
  }

  std::unique_ptr<DesktopInterface> MakeDesktop() {
    SearchInterface::Config config;
    config.session_id = "s1";
    config.user_id = "u1";
    config.topic = 1;
    return std::make_unique<DesktopInterface>(
        backend_.get(), generated_->collection, config, &log_, &clock_);
  }

  std::unique_ptr<TvInterface> MakeTv() {
    SearchInterface::Config config;
    config.session_id = "s2";
    config.user_id = "u1";
    config.topic = 1;
    return std::make_unique<TvInterface>(
        backend_.get(), generated_->collection, config, &log_, &clock_);
  }

  std::string Title() const {
    return generated_->topics.topics[0].title;
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<StaticBackend> backend_;
  SessionLog log_;
  SimulatedClock clock_;
};

TEST_F(InterfaceTest, QueryProducesResultsAndLogs) {
  auto iface = MakeDesktop();
  EXPECT_FALSE(iface->HasResults());
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  EXPECT_TRUE(iface->HasResults());
  EXPECT_FALSE(iface->results().empty());
  EXPECT_EQ(iface->queries_issued(), 1u);
  EXPECT_EQ(log_.CountType(EventType::kQuerySubmit), 1u);
  // One display event per visible shot.
  EXPECT_EQ(log_.CountType(EventType::kResultDisplayed),
            iface->VisibleShots().size());
}

TEST_F(InterfaceTest, QueryCostsTypingTime) {
  auto iface = MakeDesktop();
  const TimeMs before = clock_.Now();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ActionCosts costs = iface->costs();
  const TimeMs expected =
      static_cast<TimeMs>(Title().size()) * costs.type_query_char +
      costs.submit_query;
  EXPECT_EQ(clock_.Now() - before, expected);
}

TEST_F(InterfaceTest, TvTypingIsSlower) {
  auto desktop = MakeDesktop();
  SimulatedClock tv_clock;
  SearchInterface::Config config;
  config.session_id = "tv";
  TvInterface tv(backend_.get(), generated_->collection, config, nullptr,
                 &tv_clock);
  ASSERT_TRUE(desktop->SubmitQuery(Title()).ok());
  ASSERT_TRUE(tv.SubmitQuery(Title()).ok());
  EXPECT_GT(tv_clock.Now(), clock_.Now());
}

TEST_F(InterfaceTest, EmptyQueryRejected) {
  auto iface = MakeDesktop();
  EXPECT_TRUE(iface->SubmitQuery("").IsInvalidArgument());
}

TEST_F(InterfaceTest, PagingBounds) {
  auto iface = MakeDesktop();
  EXPECT_TRUE(iface->NextPage().IsFailedPrecondition());  // no results yet
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  EXPECT_TRUE(iface->PrevPage().IsOutOfRange());  // on first page
  if (iface->NumPages() > 1) {
    ASSERT_TRUE(iface->NextPage().ok());
    EXPECT_EQ(iface->page(), 1u);
    ASSERT_TRUE(iface->PrevPage().ok());
    EXPECT_EQ(iface->page(), 0u);
  }
}

TEST_F(InterfaceTest, PagesShowDistinctShots) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const auto page0 = iface->VisibleShots();
  ASSERT_GT(iface->NumPages(), 1u);
  ASSERT_TRUE(iface->NextPage().ok());
  const auto page1 = iface->VisibleShots();
  for (ShotId shot : page1) {
    for (ShotId prev : page0) {
      EXPECT_NE(shot, prev);
    }
  }
}

TEST_F(InterfaceTest, DesktopShowsMoreResultsPerPage) {
  auto desktop = MakeDesktop();
  auto tv = MakeTv();
  EXPECT_GT(desktop->capabilities().results_per_page,
            tv->capabilities().results_per_page);
}

TEST_F(InterfaceTest, ClickRequiresVisibility) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  // Find a shot NOT on the current page.
  ShotId hidden = kInvalidShotId;
  for (const Shot& shot : generated_->collection.shots()) {
    if (!iface->IsVisible(shot.id)) {
      hidden = shot.id;
      break;
    }
  }
  ASSERT_NE(hidden, kInvalidShotId);
  EXPECT_TRUE(iface->ClickKeyframe(hidden).IsFailedPrecondition());
  const ShotId visible = iface->VisibleShots()[0];
  EXPECT_TRUE(iface->ClickKeyframe(visible).ok());
  EXPECT_EQ(iface->open_shot(), visible);
}

TEST_F(InterfaceTest, PlayRequiresOpenShot) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  EXPECT_TRUE(iface->Play(0.5).IsFailedPrecondition());
  ASSERT_TRUE(iface->ClickKeyframe(iface->VisibleShots()[0]).ok());
  const TimeMs before = clock_.Now();
  ASSERT_TRUE(iface->Play(0.5).ok());
  EXPECT_GT(clock_.Now(), before);  // playback consumes time
  EXPECT_EQ(log_.CountType(EventType::kPlayStart), 1u);
  EXPECT_EQ(log_.CountType(EventType::kPlayStop), 1u);
}

TEST_F(InterfaceTest, PlayLogsPlayedMilliseconds) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ShotId shot = iface->VisibleShots()[0];
  ASSERT_TRUE(iface->ClickKeyframe(shot).ok());
  ASSERT_TRUE(iface->Play(1.0).ok());
  const Shot* s = generated_->collection.shot(shot).value();
  double logged = -1.0;
  for (const InteractionEvent& ev : log_.events()) {
    if (ev.type == EventType::kPlayStop) logged = ev.value;
  }
  EXPECT_DOUBLE_EQ(logged, static_cast<double>(s->duration_ms));
}

TEST_F(InterfaceTest, SeekRequiresOpenShotAndCapability) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  EXPECT_TRUE(iface->Seek(1000).IsFailedPrecondition());
  ASSERT_TRUE(iface->ClickKeyframe(iface->VisibleShots()[0]).ok());
  EXPECT_TRUE(iface->Seek(1000).ok());
}

TEST_F(InterfaceTest, TvLacksTooltipAndMetadata) {
  auto tv = MakeTv();
  ASSERT_TRUE(tv->SubmitQuery(Title()).ok());
  const ShotId shot = tv->VisibleShots()[0];
  EXPECT_TRUE(tv->HoverTooltip(shot, 500).IsUnimplemented());
  EXPECT_TRUE(tv->HighlightMetadata(shot).IsUnimplemented());
  // But it does have explicit judgement keys.
  EXPECT_TRUE(tv->MarkRelevance(shot, true).ok());
}

TEST_F(InterfaceTest, DesktopTooltipAndMetadataWork) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ShotId shot = iface->VisibleShots()[0];
  EXPECT_TRUE(iface->HoverTooltip(shot, 800).ok());
  EXPECT_TRUE(iface->HighlightMetadata(shot).ok());
  EXPECT_EQ(log_.CountType(EventType::kTooltipHover), 1u);
  EXPECT_EQ(log_.CountType(EventType::kHighlightMetadata), 1u);
}

TEST_F(InterfaceTest, VisualExampleNeedsVisibleShot) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  const ShotId shot = iface->VisibleShots()[0];
  ASSERT_TRUE(iface->SubmitVisualExample(shot).ok());
  EXPECT_TRUE(iface->HasResults());
  EXPECT_EQ(iface->queries_issued(), 2u);
}

TEST_F(InterfaceTest, SessionEndBlocksFurtherActions) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  ASSERT_TRUE(iface->EndSession().ok());
  EXPECT_TRUE(iface->session_ended());
  EXPECT_TRUE(iface->SubmitQuery("again").IsFailedPrecondition());
  EXPECT_TRUE(iface->NextPage().IsFailedPrecondition());
  EXPECT_TRUE(iface->EndSession().IsFailedPrecondition());
  EXPECT_EQ(log_.CountType(EventType::kSessionEnd), 1u);
}

TEST_F(InterfaceTest, EventsCarrySessionMetadata) {
  auto iface = MakeDesktop();
  ASSERT_TRUE(iface->SubmitQuery(Title()).ok());
  for (const InteractionEvent& ev : log_.events()) {
    EXPECT_EQ(ev.session_id, "s1");
    EXPECT_EQ(ev.user_id, "u1");
    EXPECT_EQ(ev.topic, 1u);
  }
}

}  // namespace
}  // namespace ivr
