// The service layer's central contract: N sessions driven through one
// shared SessionManager produce bit-identical per-session event streams
// and rankings whether they run sequentially or interleaved from many
// threads. This test is also the TSan workload — build with
// -DIVR_SANITIZE=thread (or the `tsan` CMake preset) and run it to
// check the sharded table for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ivr/core/string_util.h"
#include "ivr/service/managed_backend.h"
#include "ivr/service/session_manager.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

constexpr size_t kSessions = 12;

std::string Signature(const SimulatedSession& session) {
  std::string sig;
  for (const InteractionEvent& event : session.events) {
    sig += SessionLog::EventToLine(event);
    sig += "\n";
  }
  for (const ResultList& results : session.outcome.per_query_results) {
    for (const RankedShot& entry : results.items()) {
      sig += StrFormat("%u:%.17g ", entry.shot, entry.score);
    }
    sig += "\n";
  }
  return sig;
}

class ServiceDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 99;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    adaptive_ = std::make_unique<AdaptiveEngine>(
        *engine_, AdaptiveOptions(), nullptr);
  }

  /// Runs the fixed workload on `threads` threads over a fresh manager
  /// and returns one signature per session (job order).
  std::vector<std::string> RunWorkload(size_t threads) {
    SessionManager manager(*adaptive_, SessionManagerOptions());
    const SessionSimulator simulator(generated_->collection,
                                     generated_->qrels);
    const UserModel user = NoviceUser();
    const std::vector<SearchTopic>& topics = generated_->topics.topics;
    std::vector<SimulatedSession> sessions(kSessions);
    std::atomic<size_t> next{0};
    const auto worker = [&] {
      for (size_t j = next++; j < kSessions; j = next++) {
        SessionSimulator::RunConfig config;
        config.seed = 100 + j * 131;
        config.session_id = "det-s" + std::to_string(j);
        config.user_id = user.name + std::to_string(j % 3);
        ManagedSessionBackend backend(&manager, config.session_id,
                                      config.user_id);
        Result<SimulatedSession> session = simulator.Run(
            &backend, topics[j % topics.size()], user, config, nullptr);
        EXPECT_TRUE(session.ok());
        (void)backend.EndSession();
        if (session.ok()) sessions[j] = std::move(session).value();
      }
    };
    std::vector<std::thread> pool;
    for (size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
    worker();
    for (std::thread& t : pool) t.join();
    std::vector<std::string> signatures;
    signatures.reserve(kSessions);
    for (const SimulatedSession& session : sessions) {
      signatures.push_back(Signature(session));
    }
    return signatures;
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<AdaptiveEngine> adaptive_;
};

TEST_F(ServiceDeterminismTest, ConcurrentRunMatchesSequential) {
  const std::vector<std::string> sequential = RunWorkload(1);
  const std::vector<std::string> concurrent = RunWorkload(8);
  ASSERT_EQ(sequential.size(), concurrent.size());
  for (size_t j = 0; j < sequential.size(); ++j) {
    EXPECT_FALSE(sequential[j].empty()) << "session " << j << " is empty";
    EXPECT_EQ(sequential[j], concurrent[j])
        << "session " << j << " diverged between 1 and 8 threads";
  }
}

TEST_F(ServiceDeterminismTest, RepeatedConcurrentRunsAgree) {
  // Thread scheduling varies run to run; the results must not.
  EXPECT_EQ(RunWorkload(8), RunWorkload(8));
}

}  // namespace
}  // namespace ivr
