#include "ivr/video/serialization.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "ivr/core/file_util.h"
#include "ivr/retrieval/engine.h"

namespace ivr {
namespace {

GeneratedCollection MakeCollection() {
  GeneratorOptions options;
  options.seed = 91;
  options.num_topics = 4;
  options.num_videos = 5;
  return GenerateCollection(options).value();
}

TEST(SerializationTest, RoundTripPreservesStructure) {
  const GeneratedCollection original = MakeCollection();
  const std::string text = SerializeCollection(original);
  const GeneratedCollection parsed = ParseCollection(text).value();

  EXPECT_EQ(parsed.collection.num_videos(),
            original.collection.num_videos());
  EXPECT_EQ(parsed.collection.num_stories(),
            original.collection.num_stories());
  EXPECT_EQ(parsed.collection.num_shots(),
            original.collection.num_shots());
  EXPECT_EQ(parsed.collection.topic_names(),
            original.collection.topic_names());
  EXPECT_EQ(parsed.topics.size(), original.topics.size());
  EXPECT_EQ(parsed.qrels.ToTrecFormat(), original.qrels.ToTrecFormat());
}

TEST(SerializationTest, RoundTripPreservesShotContent) {
  const GeneratedCollection original = MakeCollection();
  const GeneratedCollection parsed =
      ParseCollection(SerializeCollection(original)).value();
  for (size_t i = 0; i < original.collection.num_shots(); ++i) {
    const Shot& a = original.collection.shots()[i];
    const Shot& b = parsed.collection.shots()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.story, b.story);
    EXPECT_EQ(a.video, b.video);
    EXPECT_EQ(a.start_ms, b.start_ms);
    EXPECT_EQ(a.duration_ms, b.duration_ms);
    EXPECT_EQ(a.primary_topic, b.primary_topic);
    EXPECT_EQ(a.concepts, b.concepts);
    EXPECT_EQ(a.external_id, b.external_id);
    EXPECT_EQ(a.asr_transcript, b.asr_transcript);
    EXPECT_EQ(a.true_transcript, b.true_transcript);
    ASSERT_EQ(a.keyframe.size(), b.keyframe.size());
    for (size_t bin = 0; bin < a.keyframe.size(); ++bin) {
      EXPECT_DOUBLE_EQ(a.keyframe[bin], b.keyframe[bin]);
    }
  }
}

TEST(SerializationTest, RoundTripPreservesTopicsAndBackfills) {
  const GeneratedCollection original = MakeCollection();
  const GeneratedCollection parsed =
      ParseCollection(SerializeCollection(original)).value();
  for (size_t i = 0; i < original.topics.size(); ++i) {
    const SearchTopic& a = original.topics.topics[i];
    const SearchTopic& b = parsed.topics.topics[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.target_topic, b.target_topic);
    EXPECT_EQ(a.title, b.title);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.examples.size(), b.examples.size());
  }
  // Story/video child lists were rebuilt.
  for (const NewsStory& story : parsed.collection.stories()) {
    EXPECT_FALSE(story.shots.empty());
    for (ShotId shot : story.shots) {
      EXPECT_EQ(parsed.collection.shot(shot).value()->story, story.id);
    }
  }
}

TEST(SerializationTest, ReserializingIsByteStable) {
  const GeneratedCollection original = MakeCollection();
  const std::string once = SerializeCollection(original);
  const std::string twice =
      SerializeCollection(ParseCollection(once).value());
  EXPECT_EQ(once, twice);
}

TEST(SerializationTest, ParsedCollectionIsSearchable) {
  const GeneratedCollection original = MakeCollection();
  const GeneratedCollection parsed =
      ParseCollection(SerializeCollection(original)).value();
  auto engine = RetrievalEngine::Build(parsed.collection).value();
  Query query;
  query.text = parsed.topics.topics[0].title;
  EXPECT_FALSE(engine->Search(query, 10).empty());
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_TRUE(ParseCollection("").status().IsCorruption());
  EXPECT_TRUE(ParseCollection("not an archive").status().IsCorruption());
  EXPECT_TRUE(ParseCollection("ivr-collection v1\nbogus 3")
                  .status()
                  .IsCorruption());
  // Truncated archive.
  const std::string text =
      SerializeCollection(MakeCollection()).substr(0, 200);
  EXPECT_FALSE(ParseCollection(text).ok());
}

TEST(SerializationTest, SaveLoadFileRoundTrip) {
  const GeneratedCollection original = MakeCollection();
  const std::string path = ::testing::TempDir() + "/ivr_ser_test.ivr";
  ASSERT_TRUE(SaveCollection(original, path).ok());
  const GeneratedCollection loaded = LoadCollection(path).value();
  EXPECT_EQ(loaded.collection.num_shots(),
            original.collection.num_shots());
  std::remove(path.c_str());
  EXPECT_TRUE(LoadCollection(path).status().IsIOError());
}

TEST(FileUtilTest, ReadWriteRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ivr_file_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "hello\nworld");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());  // truncates
  EXPECT_EQ(ReadFileToString(path).value(), "");
  std::remove(path.c_str());
  EXPECT_TRUE(ReadFileToString(path).status().IsIOError());
  EXPECT_TRUE(
      WriteStringToFile("/nonexistent-dir/x", "y").IsIOError());
}

}  // namespace
}  // namespace ivr
