#include "ivr/core/clock.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(SimulatedClockTest, StartsAtGivenTime) {
  SimulatedClock clock(1500);
  EXPECT_EQ(clock.Now(), 1500);
  EXPECT_EQ(SimulatedClock().Now(), 0);
}

TEST(SimulatedClockTest, AdvanceAccumulates) {
  SimulatedClock clock;
  clock.Advance(100);
  clock.Advance(250);
  EXPECT_EQ(clock.Now(), 350);
}

TEST(SimulatedClockTest, NegativeAdvanceIgnored) {
  SimulatedClock clock(100);
  clock.Advance(-50);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(0);
  EXPECT_EQ(clock.Now(), 100);
}

TEST(SimulatedClockTest, AdvanceToIsMonotonic) {
  SimulatedClock clock(100);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Now(), 500);
  clock.AdvanceTo(200);  // past: ignored
  EXPECT_EQ(clock.Now(), 500);
}

TEST(FormatDurationTest, FormatsComponents) {
  EXPECT_EQ(FormatDuration(0), "0:00:00.000");
  EXPECT_EQ(FormatDuration(1234), "0:00:01.234");
  EXPECT_EQ(FormatDuration(kMillisPerMinute + 2 * kMillisPerSecond + 3),
            "0:01:02.003");
  EXPECT_EQ(FormatDuration(2 * kMillisPerHour + 30 * kMillisPerMinute),
            "2:30:00.000");
}

TEST(FormatDurationTest, NegativeDurations) {
  EXPECT_EQ(FormatDuration(-1500), "-0:00:01.500");
}

}  // namespace
}  // namespace ivr
