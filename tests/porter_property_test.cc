// Property suite for the Porter stemmer over synthetic and adversarial
// inputs: the stemmer must never crash, lengthen a word, produce empty
// output for non-trivial input, or emit characters it did not receive.

#include <cctype>

#include <gtest/gtest.h>

#include "ivr/core/rng.h"
#include "ivr/text/porter_stemmer.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class PorterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomWord(Rng* rng) {
  const int64_t len = rng->UniformInt(1, 20);
  std::string word;
  for (int64_t i = 0; i < len; ++i) {
    word.push_back(static_cast<char>('a' + rng->UniformInt(0, 25)));
  }
  return word;
}

TEST_P(PorterPropertyTest, NeverLengthensAndNeverEmpties) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const std::string word = RandomWord(&rng);
    const std::string stem = PorterStem(word);
    EXPECT_LE(stem.size(), word.size()) << word;
    EXPECT_FALSE(stem.empty()) << word;
  }
}

TEST_P(PorterPropertyTest, OutputIsLowercaseAlpha) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 500; ++i) {
    const std::string stem = PorterStem(RandomWord(&rng));
    for (char c : stem) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)));
    }
  }
}

TEST_P(PorterPropertyTest, FirstCharacterSurvives) {
  // Porter only rewrites suffixes (including y->i as early as position
  // 1, e.g. "oys" -> "oi"), so the first character is always untouched.
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 500; ++i) {
    const std::string word = RandomWord(&rng);
    const std::string stem = PorterStem(word);
    ASSERT_FALSE(stem.empty());
    EXPECT_EQ(stem[0], word[0]) << word;
  }
}

TEST_P(PorterPropertyTest, SyntheticVocabularyStemsConsistently) {
  // The generator's synthetic words must stem deterministically and
  // never collide catastrophically with their own plural-like suffixed
  // variants (the analyzer relies on this to keep topic vocabularies
  // separable).
  Rng rng(GetParam() + 300);
  for (int i = 0; i < 300; ++i) {
    const std::string word =
        MakeSyntheticWord(static_cast<uint64_t>(rng.UniformInt(0, 100000)));
    const std::string stem = PorterStem(word);
    EXPECT_EQ(stem, PorterStem(word));  // deterministic
    // A synthetic word and a different synthetic word must not be merged
    // by stemming too aggressively: check against its index neighbour.
    const std::string other = MakeSyntheticWord(
        static_cast<uint64_t>(rng.UniformInt(100001, 200000)));
    EXPECT_NE(PorterStem(other), stem);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PorterPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace ivr
