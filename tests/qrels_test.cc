#include "ivr/video/qrels.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(QrelsTest, SetAndGrade) {
  Qrels qrels;
  qrels.Set(1, 10, 2);
  qrels.Set(1, 11, 1);
  EXPECT_EQ(qrels.Grade(1, 10), 2);
  EXPECT_EQ(qrels.Grade(1, 11), 1);
  EXPECT_EQ(qrels.Grade(1, 12), 0);
  EXPECT_EQ(qrels.Grade(2, 10), 0);
}

TEST(QrelsTest, SettingZeroRecordsJudgedNonrelevant) {
  Qrels qrels;
  qrels.Set(1, 10, 2);
  qrels.Set(1, 10, 0);
  // Grade 0 downgrades the judgement but keeps the shot in the pool:
  // judged-nonrelevant, not unjudged.
  EXPECT_EQ(qrels.Grade(1, 10), 0);
  EXPECT_TRUE(qrels.IsJudged(1, 10));
  EXPECT_FALSE(qrels.IsRelevant(1, 10));
  EXPECT_EQ(qrels.Topics(), (std::vector<SearchTopicId>{1}));
  EXPECT_EQ(qrels.TotalJudgments(), 1u);
  EXPECT_EQ(qrels.NumJudged(1), 1u);
  EXPECT_EQ(qrels.NumRelevant(1), 0u);
}

TEST(QrelsTest, NegativeGradeRemoves) {
  Qrels qrels;
  qrels.Set(1, 10, 2);
  qrels.Set(1, 10, -1);
  EXPECT_EQ(qrels.Grade(1, 10), 0);
  EXPECT_FALSE(qrels.IsJudged(1, 10));
  EXPECT_TRUE(qrels.Topics().empty());
  EXPECT_EQ(qrels.TotalJudgments(), 0u);
}

TEST(QrelsTest, IsJudgedDistinguishesPoolFromRelevance) {
  Qrels qrels;
  qrels.Set(1, 10, 1);
  qrels.Set(1, 11, 0);
  EXPECT_TRUE(qrels.IsJudged(1, 10));
  EXPECT_TRUE(qrels.IsJudged(1, 11));
  EXPECT_FALSE(qrels.IsJudged(1, 12));
  EXPECT_FALSE(qrels.IsJudged(2, 10));
  EXPECT_EQ(qrels.NumJudged(1), 2u);
  EXPECT_EQ(qrels.NumRelevant(1), 1u);
}

TEST(QrelsTest, IsRelevantRespectsMinGrade) {
  Qrels qrels;
  qrels.Set(1, 10, 1);
  qrels.Set(1, 20, 2);
  EXPECT_TRUE(qrels.IsRelevant(1, 10));
  EXPECT_FALSE(qrels.IsRelevant(1, 10, 2));
  EXPECT_TRUE(qrels.IsRelevant(1, 20, 2));
  EXPECT_FALSE(qrels.IsRelevant(1, 30));
}

TEST(QrelsTest, RelevantShotsSortedAndFiltered) {
  Qrels qrels;
  qrels.Set(1, 30, 1);
  qrels.Set(1, 10, 2);
  qrels.Set(1, 20, 1);
  EXPECT_EQ(qrels.RelevantShots(1), (std::vector<ShotId>{10, 20, 30}));
  EXPECT_EQ(qrels.RelevantShots(1, 2), (std::vector<ShotId>{10}));
  EXPECT_TRUE(qrels.RelevantShots(9).empty());
}

TEST(QrelsTest, CountsAndTopics) {
  Qrels qrels;
  qrels.Set(3, 1, 1);
  qrels.Set(1, 2, 2);
  qrels.Set(1, 3, 1);
  EXPECT_EQ(qrels.NumRelevant(1), 2u);
  EXPECT_EQ(qrels.NumRelevant(1, 2), 1u);
  EXPECT_EQ(qrels.NumRelevant(7), 0u);
  EXPECT_EQ(qrels.Topics(), (std::vector<SearchTopicId>{1, 3}));
  EXPECT_EQ(qrels.TotalJudgments(), 3u);
}

TEST(QrelsTest, TrecFormatRoundTrip) {
  Qrels qrels;
  qrels.Set(1, 5, 2);
  qrels.Set(1, 9, 1);
  qrels.Set(4, 2, 1);
  const std::string text = qrels.ToTrecFormat();
  EXPECT_EQ(text, "1 0 shot5 2\n1 0 shot9 1\n4 0 shot2 1\n");
  const Qrels parsed = Qrels::FromTrecFormat(text).value();
  EXPECT_EQ(parsed.ToTrecFormat(), text);
}

TEST(QrelsTest, ParseKeepsZeroGradeJudgements) {
  const Qrels parsed =
      Qrels::FromTrecFormat("\n1 0 shot5 2\n\n2 0 shot3 0\n").value();
  EXPECT_EQ(parsed.Grade(1, 5), 2);
  EXPECT_EQ(parsed.Grade(2, 3), 0);
  EXPECT_TRUE(parsed.IsJudged(2, 3));
  EXPECT_EQ(parsed.TotalJudgments(), 2u);
}

TEST(QrelsTest, ZeroGradeRoundTripsThroughTrecFormat) {
  Qrels qrels;
  qrels.Set(1, 5, 2);
  qrels.Set(1, 6, 0);
  const std::string text = qrels.ToTrecFormat();
  EXPECT_EQ(text, "1 0 shot5 2\n1 0 shot6 0\n");
  const Qrels parsed = Qrels::FromTrecFormat(text).value();
  EXPECT_TRUE(parsed.IsJudged(1, 6));
  EXPECT_EQ(parsed.ToTrecFormat(), text);
}

TEST(QrelsTest, ParseRejectsMalformedLines) {
  EXPECT_TRUE(Qrels::FromTrecFormat("1 0 shot5").status().IsCorruption());
  EXPECT_TRUE(
      Qrels::FromTrecFormat("1 0 doc5 2").status().IsCorruption());
  EXPECT_TRUE(
      Qrels::FromTrecFormat("x 0 shot5 2").status().IsInvalidArgument());
  EXPECT_TRUE(
      Qrels::FromTrecFormat("1 0 shotX 2").status().IsInvalidArgument());
}

}  // namespace
}  // namespace ivr
