#include "ivr/core/retry.h"

#include <vector>

#include <gtest/gtest.h>

namespace ivr {
namespace {

RetryOptions NoSleep(std::vector<int64_t>* slept = nullptr) {
  RetryOptions options;
  options.sleep_ms = [slept](int64_t ms) {
    if (slept != nullptr) slept->push_back(ms);
  };
  return options;
}

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  std::vector<int64_t> slept;
  int calls = 0;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::OK();
      },
      NoSleep(&slept));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, RetriesTransientIOErrorUntilSuccess) {
  std::vector<int64_t> slept;
  int calls = 0;
  const Result<int> result = RetryOnIOError(
      [&calls]() -> Result<int> {
        if (++calls < 3) return Status::IOError("flaky");
        return 42;
      },
      NoSleep(&slept));
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 3);
  // Exponential backoff: 5ms then 10ms with the defaults.
  EXPECT_EQ(slept, (std::vector<int64_t>{5, 10}));
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  std::vector<int64_t> slept;
  int calls = 0;
  RetryOptions options = NoSleep(&slept);
  options.max_attempts = 4;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::IOError("always down");
      },
      options);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(slept, (std::vector<int64_t>{5, 10, 20}));
}

TEST(RetryTest, PermanentErrorsAreNotRetried) {
  int calls = 0;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::Corruption("bad checksum");
      },
      NoSleep());
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ResultErrorCodeDrivesTheDecision) {
  int calls = 0;
  const Result<std::string> result = RetryOnIOError(
      [&calls]() -> Result<std::string> {
        ++calls;
        return Status::NotFound("no such user");
      },
      NoSleep());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ivr
