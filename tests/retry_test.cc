#include "ivr/core/retry.h"

#include <vector>

#include <gtest/gtest.h>

namespace ivr {
namespace {

RetryOptions NoSleep(std::vector<int64_t>* slept = nullptr) {
  RetryOptions options;
  options.sleep_ms = [slept](int64_t ms) {
    if (slept != nullptr) slept->push_back(ms);
  };
  return options;
}

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  std::vector<int64_t> slept;
  int calls = 0;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::OK();
      },
      NoSleep(&slept));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, RetriesTransientIOErrorUntilSuccess) {
  std::vector<int64_t> slept;
  int calls = 0;
  const Result<int> result = RetryOnIOError(
      [&calls]() -> Result<int> {
        if (++calls < 3) return Status::IOError("flaky");
        return 42;
      },
      NoSleep(&slept));
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 3);
  // Exponential backoff: 5ms then 10ms with the defaults.
  EXPECT_EQ(slept, (std::vector<int64_t>{5, 10}));
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  std::vector<int64_t> slept;
  int calls = 0;
  RetryOptions options = NoSleep(&slept);
  options.max_attempts = 4;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::IOError("always down");
      },
      options);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(slept, (std::vector<int64_t>{5, 10, 20}));
}

TEST(RetryTest, PermanentErrorsAreNotRetried) {
  int calls = 0;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::Corruption("bad checksum");
      },
      NoSleep());
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ResultErrorCodeDrivesTheDecision) {
  int calls = 0;
  const Result<std::string> result = RetryOnIOError(
      [&calls]() -> Result<std::string> {
        ++calls;
        return Status::NotFound("no such user");
      },
      NoSleep());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, JitterIsDeterministicPerSeed) {
  const auto schedule = [](uint64_t seed) {
    std::vector<int64_t> slept;
    RetryOptions options = NoSleep(&slept);
    options.max_attempts = 5;
    options.jitter = 0.5;
    options.jitter_seed = seed;
    int calls = 0;
    (void)RetryOnIOError(
        [&calls] {
          ++calls;
          return Status::IOError("down");
        },
        options);
    EXPECT_EQ(calls, 5);
    return slept;
  };
  const std::vector<int64_t> first = schedule(7);
  // Same seed -> the exact same schedule, run after run.
  EXPECT_EQ(first, schedule(7));
  // A differently-seeded worker desynchronizes.
  EXPECT_NE(first, schedule(8));
  // Jitter only stretches: every delay stays within [base, base*1.5].
  const std::vector<int64_t> base = {5, 10, 20, 40};
  ASSERT_EQ(first.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_GE(first[i], base[i]);
    EXPECT_LE(first[i], base[i] + base[i] / 2);
  }
}

TEST(RetryTest, ZeroJitterKeepsTheLegacySchedule) {
  std::vector<int64_t> slept;
  RetryOptions options = NoSleep(&slept);
  options.jitter = 0.0;
  options.jitter_seed = 123;  // ignored when jitter is off
  (void)RetryOnIOError([] { return Status::IOError("down"); }, options);
  EXPECT_EQ(slept, (std::vector<int64_t>{5, 10}));
}

TEST(RetryTest, ExhaustedBudgetFailsFastWithTheLastError) {
  RetryBudget budget(RetryBudget::Options{1.0, 0.0});
  std::vector<int64_t> slept;
  RetryOptions options = NoSleep(&slept);
  options.max_attempts = 5;
  options.budget = &budget;
  int calls = 0;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::IOError("storming");
      },
      options);
  // One token bought one retry; the second retry was denied and the
  // caller got the last error immediately instead of burning attempts.
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(slept.size(), 1u);
  EXPECT_EQ(budget.retries_allowed(), 1u);
  EXPECT_EQ(budget.retries_denied(), 1u);
}

TEST(RetryTest, InitialCallsRefillTheBudget) {
  RetryBudget budget(RetryBudget::Options{2.0, 0.5});
  ASSERT_TRUE(budget.TryConsume());
  ASSERT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());  // empty
  // Two healthy calls deposit 0.5 each: one retry affordable again.
  RetryOptions options = NoSleep();
  options.budget = &budget;
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(RetryOnIOError([] { return Status::OK(); }, options).ok());
  }
  EXPECT_TRUE(budget.TryConsume());
  // Deposits never exceed capacity.
  for (int i = 0; i < 100; ++i) budget.RecordCall();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

TEST(RetryTest, BudgetDoesNotGateSuccessfulWork) {
  RetryBudget budget(RetryBudget::Options{0.0, 0.0});  // always empty
  RetryOptions options = NoSleep();
  options.budget = &budget;
  int calls = 0;
  const Status status = RetryOnIOError(
      [&calls] {
        ++calls;
        return Status::OK();
      },
      options);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(budget.retries_denied(), 0u);
}

}  // namespace
}  // namespace ivr
