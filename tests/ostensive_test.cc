#include "ivr/feedback/ostensive.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(OstensiveModelTest, FreshEvidenceHasFullWeight) {
  const OstensiveModel model(kMillisPerMinute);
  EXPECT_DOUBLE_EQ(model.Weight(1000, 1000), 1.0);
  // Future evidence (clock skew) also clamps to 1.
  EXPECT_DOUBLE_EQ(model.Weight(2000, 1000), 1.0);
}

TEST(OstensiveModelTest, HalfLifeHalves) {
  const OstensiveModel model(kMillisPerMinute);
  EXPECT_NEAR(model.Weight(0, kMillisPerMinute), 0.5, 1e-12);
  EXPECT_NEAR(model.Weight(0, 2 * kMillisPerMinute), 0.25, 1e-12);
  EXPECT_NEAR(model.Weight(0, 3 * kMillisPerMinute), 0.125, 1e-12);
}

TEST(OstensiveModelTest, MonotonicallyDecreasingInAge) {
  const OstensiveModel model(30 * kMillisPerSecond);
  double prev = 2.0;
  for (TimeMs age = 0; age <= 10 * kMillisPerMinute;
       age += 10 * kMillisPerSecond) {
    const double w = model.Weight(0, age);
    EXPECT_LE(w, prev);
    EXPECT_GT(w, 0.0);
    prev = w;
  }
}

TEST(OstensiveModelTest, DisabledModelIsIdentity) {
  const OstensiveModel model(0);
  EXPECT_FALSE(model.enabled());
  EXPECT_DOUBLE_EQ(model.Weight(0, 100 * kMillisPerHour), 1.0);
  const OstensiveModel negative(-5);
  EXPECT_DOUBLE_EQ(negative.Weight(0, 100), 1.0);
}

TEST(OstensiveModelTest, WeightByRankGeometric) {
  EXPECT_DOUBLE_EQ(OstensiveModel::WeightByRank(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(OstensiveModel::WeightByRank(1, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(OstensiveModel::WeightByRank(3, 0.5), 0.125);
}

TEST(OstensiveModelTest, WeightByRankClampsDecay) {
  EXPECT_DOUBLE_EQ(OstensiveModel::WeightByRank(2, 1.5), 1.0);
  EXPECT_DOUBLE_EQ(OstensiveModel::WeightByRank(2, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(OstensiveModel::WeightByRank(0, -0.5), 1.0);
}

}  // namespace
}  // namespace ivr
