#include "ivr/eval/significance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ivr/core/rng.h"

namespace ivr {
namespace {

TEST(StudentTTest, PValueReferencePoints) {
  // Two-sided p for t=2.0, df=10 is ~0.0734 (standard tables).
  EXPECT_NEAR(StudentTTwoSidedPValue(2.0, 10.0), 0.0734, 0.001);
  // t=0 means p=1.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10.0), 1.0, 1e-9);
  // Symmetric in t.
  EXPECT_NEAR(StudentTTwoSidedPValue(-2.0, 10.0),
              StudentTTwoSidedPValue(2.0, 10.0), 1e-12);
  // t=12.706, df=1 -> p ~ 0.05 (the classic 95% quantile).
  EXPECT_NEAR(StudentTTwoSidedPValue(12.706, 1.0), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(StudentTTwoSidedPValue(1.0, 0.0), 1.0);
}

TEST(NormalPValueTest, ReferencePoints) {
  EXPECT_NEAR(NormalTwoSidedPValue(1.959964), 0.05, 1e-4);
  EXPECT_NEAR(NormalTwoSidedPValue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(NormalTwoSidedPValue(-2.575829), 0.01, 1e-4);
}

TEST(PairedTTestTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {0.1, 0.2, 0.3, 0.4};
  const PairedTestResult r = PairedTTest(a, a).value();
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_EQ(r.n, 4u);
}

TEST(PairedTTestTest, LargeConsistentDifferenceSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(0.5 + 0.01 * i);
    b.push_back(0.3 + 0.011 * i);
  }
  const PairedTestResult r = PairedTTest(a, b).value();
  EXPECT_GT(r.statistic, 2.0);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(PairedTTestTest, NoisyEqualMeansNotSignificant) {
  // Alternating differences with mean zero.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(0.5);
    b.push_back(i % 2 == 0 ? 0.45 : 0.55);
  }
  const PairedTestResult r = PairedTTest(a, b).value();
  EXPECT_GT(r.p_value, 0.5);
}

TEST(PairedTTestTest, ConstantNonzeroDifferenceDominates) {
  const std::vector<double> a = {0.5, 0.6, 0.7};
  const std::vector<double> b = {0.4, 0.5, 0.6};
  const PairedTestResult r = PairedTTest(a, b).value();
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);  // zero variance, nonzero mean
}

TEST(PairedTTestTest, InputValidation) {
  EXPECT_TRUE(PairedTTest({1.0}, {1.0, 2.0}).status().IsInvalidArgument());
  EXPECT_TRUE(PairedTTest({1.0}, {1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(PairedTTest({}, {}).status().IsInvalidArgument());
}

TEST(WilcoxonTest, IdenticalSamplesPIsOne) {
  const std::vector<double> a = {0.1, 0.2, 0.3};
  const PairedTestResult r = WilcoxonSignedRank(a, a).value();
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_EQ(r.n, 0u);  // all pairs dropped as zero-difference
}

TEST(WilcoxonTest, ConsistentImprovementSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(0.5 + 0.01 * (i % 7));
    b.push_back(a.back() - 0.05 - 0.001 * i);
  }
  const PairedTestResult r = WilcoxonSignedRank(a, b).value();
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.statistic, 0.0);
}

TEST(WilcoxonTest, BalancedSignsNotSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(0.5);
    b.push_back(i % 2 == 0 ? 0.5 - 0.01 * (i + 1) : 0.5 + 0.01 * i);
  }
  const PairedTestResult r = WilcoxonSignedRank(a, b).value();
  EXPECT_GT(r.p_value, 0.1);
}

TEST(WilcoxonTest, InputValidation) {
  EXPECT_TRUE(
      WilcoxonSignedRank({1.0}, {1.0, 2.0}).status().IsInvalidArgument());
}

TEST(RandomizationTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {0.1, 0.2, 0.3, 0.4};
  const PairedTestResult r = RandomizationTest(a, a).value();
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);  // every permutation ties at zero
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
}

TEST(RandomizationTest, ConsistentDifferenceSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 15; ++i) {
    a.push_back(0.5 + 0.01 * i);
    b.push_back(a.back() - 0.1);
  }
  const PairedTestResult r = RandomizationTest(a, b).value();
  // All-same-sign differences: only the 2 all-positive/all-negative sign
  // assignments reach the observed mean -> p ~ 2/2^15.
  EXPECT_LT(r.p_value, 0.01);
}

TEST(RandomizationTest, AgreesWithTTestOnModerateEffects) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    const double base = rng.Uniform(0.2, 0.6);
    a.push_back(base + rng.Normal(0.03, 0.05));
    b.push_back(base);
  }
  const double p_rand = RandomizationTest(a, b).value().p_value;
  const double p_t = PairedTTest(a, b).value().p_value;
  // The two tests should broadly agree (within a factor of ~2 at these
  // sample sizes).
  EXPECT_LT(std::fabs(std::log((p_rand + 1e-6) / (p_t + 1e-6))), 1.0);
}

TEST(RandomizationTest, DeterministicInSeed) {
  const std::vector<double> a = {0.5, 0.7, 0.6, 0.9, 0.4};
  const std::vector<double> b = {0.4, 0.6, 0.7, 0.5, 0.3};
  EXPECT_DOUBLE_EQ(RandomizationTest(a, b, 2000, 9).value().p_value,
                   RandomizationTest(a, b, 2000, 9).value().p_value);
}

TEST(RandomizationTest, InputValidation) {
  EXPECT_TRUE(
      RandomizationTest({1.0}, {1.0, 2.0}).status().IsInvalidArgument());
  EXPECT_TRUE(RandomizationTest({}, {}).status().IsInvalidArgument());
}

TEST(KendallTauTest, PerfectAgreementAndReversal) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> reversed = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(KendallTau(a, a).value(), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(a, reversed).value(), -1.0);
}

TEST(KendallTauTest, PartialAgreement) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 3.0, 2.0};
  // 2 concordant, 1 discordant over 3 pairs.
  EXPECT_NEAR(KendallTau(a, b).value(), (2.0 - 1.0) / 3.0, 1e-12);
}

TEST(KendallTauTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(KendallTau({1.0}, {2.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau({}, {}).value(), 0.0);
  EXPECT_TRUE(KendallTau({1.0}, {1.0, 2.0}).status().IsInvalidArgument());
}

TEST(KendallTauTest, TiesContributeZero) {
  const std::vector<double> a = {1.0, 1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  // Pair (0,1) tied in a: neither concordant nor discordant.
  EXPECT_NEAR(KendallTau(a, b).value(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace ivr
