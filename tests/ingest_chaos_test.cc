// Chaos tier for the generational index: concurrent query streams under
// injected ingest faults must always observe one complete generation,
// bit-identical to a sequential rerun of that generation, and every
// on-disk casualty must be accounted for by the salvage counters.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/cache/result_cache.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/live_engine.h"
#include "ivr/ingest/manifest.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

GeneratedCollection MakeBase() {
  GeneratorOptions options;
  options.seed = 2008;
  options.num_videos = 5;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

GeneratedCollection MakeStream() {
  GeneratorOptions options;
  options.seed = 99;
  options.num_videos = 8;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  if (FileExists(dir)) {
    const auto entries = ListDirectory(dir);
    if (entries.ok()) {
      for (const std::string& entry : *entries) {
        (void)RemoveFile(dir + "/" + entry);
      }
    }
  }
  return dir;
}

Query FixedQuery(const GeneratedCollection& base) {
  const SearchTopic& topic = base.topics.topics.at(0);
  Query query;
  query.text = topic.title;
  query.examples = topic.examples;
  return query;
}

std::string Ranking(const EngineSnapshot& snapshot, const Query& query) {
  const ResultList list = snapshot.engine->Search(query, 10);
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    out += StrFormat("%u:%.17g ", list.at(i).shot, list.at(i).score);
  }
  return out;
}

/// Sequentially reruns generation `record` in a scratch dir holding only
/// that record and its segments, and returns the fixed query's ranking.
std::string SequentialRerun(const std::string& source_dir,
                            const ManifestRecord& record,
                            const Query& query) {
  const std::string dir = FreshDir("ingest_chaos_rerun");
  EXPECT_TRUE(MakeDirectory(dir).ok());
  for (const std::string& name : record.segments) {
    const auto bytes = ReadFileToString(source_dir + "/" + name);
    EXPECT_TRUE(bytes.ok()) << name;
    EXPECT_TRUE(WriteStringToFile(dir + "/" + name, *bytes).ok());
  }
  EXPECT_TRUE(ManifestLog(LiveEngine::ManifestPath(dir)).Rewrite(record).ok());
  IngestOptions options;
  options.dir = dir;
  auto live = LiveEngine::Open(MakeBase(), options);
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ((*live)->Acquire()->generation, record.generation);
  return Ranking(*(*live)->Acquire(), query);
}

TEST(IngestChaosTest, ConcurrentReadersSeeOnlyCompleteGenerations) {
  const std::string dir = FreshDir("ingest_chaos_live");
  const GeneratedCollection base = MakeBase();
  const GeneratedCollection stream = MakeStream();
  const Query query = FixedQuery(base);

  std::vector<std::vector<std::pair<uint64_t, std::string>>> observed(3);
  {
    ScopedFaultInjection faults(
        "ingest.append:0.05,ingest.publish:0.05,ingest.merge:0.05,"
        "ingest.manifest:0.05,file.atomic.dirsync:0.05",
        7);
    ASSERT_TRUE(faults.status().ok());

    auto cache = std::make_shared<ResultCache>();
    IngestOptions options;
    options.dir = dir;
    options.cache = cache;
    auto live_result = LiveEngine::Open(MakeBase(), std::move(options));
    ASSERT_TRUE(live_result.ok()) << live_result.status().ToString();
    LiveEngine& live = **live_result;

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (size_t r = 0; r < observed.size(); ++r) {
      readers.emplace_back([&live, &query, &stop, &observed, r] {
        while (!stop.load(std::memory_order_acquire)) {
          const auto snapshot = live.Acquire();
          observed[r].emplace_back(snapshot->generation,
                                   Ranking(*snapshot, query));
        }
      });
    }

    // The writer: stream every video in, publishing every other one.
    // Faulted appends lose that video (acceptable — append is all-or-
    // nothing per video); faulted publishes keep the delta for retry.
    for (VideoId v = 0; v < stream.collection.num_videos(); ++v) {
      (void)live.AppendVideoFrom(stream.collection, v);
      if (v % 2 == 1) (void)live.Publish();
    }
    for (int attempt = 0; attempt < 20; ++attempt) {
      if (live.Publish().ok()) break;
    }

    stop.store(true, std::memory_order_release);
    for (std::thread& reader : readers) reader.join();

    const IngestStats stats = live.Stats();
    EXPECT_GT(stats.publishes, 0u);
    // The run genuinely served from multiple per-segment sub-indexes,
    // not a chain of single-segment fast paths.
    EXPECT_GE(stats.segments, 2u);
  }  // faults disarmed before verification

  // Sequentially rerun every generation the manifest records (plus the
  // base-only generation 0) and demand bit-identity for every concurrent
  // observation.
  const auto loaded = ManifestLog(LiveEngine::ManifestPath(dir)).Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_FALSE(loaded->records.empty());
  std::map<uint64_t, std::string> expected;
  {
    ManifestRecord gen0;
    gen0.generation = 0;
    expected[0] = SequentialRerun(dir, gen0, query);
  }
  for (const ManifestRecord& record : loaded->records) {
    expected[record.generation] = SequentialRerun(dir, record, query);
  }

  size_t observations = 0;
  for (const auto& reader_log : observed) {
    for (const auto& [generation, ranking] : reader_log) {
      ++observations;
      const auto it = expected.find(generation);
      ASSERT_NE(it, expected.end())
          << "reader observed unpublished generation " << generation;
      ASSERT_EQ(ranking, it->second)
          << "generation " << generation
          << " served a ranking no sequential rerun produces";
    }
  }
  EXPECT_GT(observations, 0u);

  // Salvage accounting: reopen the battered directory and require every
  // unreferenced .seg file (failed publishes strand exactly these) to be
  // counted as an orphan — no silent drops, no double counts.
  size_t unreferenced = 0;
  {
    std::vector<std::string> serving;
    if (!loaded->records.empty()) serving = loaded->records.back().segments;
    const std::vector<std::string> on_disk = ListDirectory(dir).value();
    for (const std::string& name : on_disk) {
      if (!EndsWith(name, ".seg")) continue;
      bool referenced = false;
      for (const std::string& s : serving) referenced |= (s == name);
      if (!referenced) ++unreferenced;
    }
  }
  IngestOptions reopen_options;
  reopen_options.dir = dir;
  auto reopened = LiveEngine::Open(MakeBase(), reopen_options);
  ASSERT_TRUE(reopened.ok());
  const IngestStats reopen_stats = (*reopened)->Stats();
  EXPECT_EQ(reopen_stats.orphan_segments_dropped, unreferenced);
  EXPECT_EQ(reopen_stats.torn_segments_dropped, 0u);
  // No process was killed mid-rename, so no mkstemp temp can be stale —
  // the sweep counter stays disjoint from the fault casualties above.
  EXPECT_EQ(reopen_stats.stale_temp_files_removed, 0u);
  EXPECT_EQ((*reopened)->Acquire()->generation,
            loaded->records.back().generation);
  // The replayed snapshot serves one shard per manifest segment plus the
  // base — the segmented composition, reconstructed from disk.
  EXPECT_EQ((*reopened)->Acquire()->engine->num_shards(),
            reopen_stats.segments + 1);
  EXPECT_EQ(Ranking(*(*reopened)->Acquire(), query),
            expected[loaded->records.back().generation]);
}

TEST(IngestChaosTest, BackgroundMergeUnderFaultsKeepsServingConsistent) {
  const std::string dir = FreshDir("ingest_chaos_merge");
  const GeneratedCollection base = MakeBase();
  const GeneratedCollection stream = MakeStream();
  const Query query = FixedQuery(base);

  std::string final_ranking;
  uint64_t final_generation = 0;
  {
    ScopedFaultInjection faults("ingest.merge:0.3,ingest.manifest:0.1", 11);
    ASSERT_TRUE(faults.status().ok());
    IngestOptions options;
    options.dir = dir;
    options.merge_after_segments = 2;
    options.background_merge = true;
    auto live_result = LiveEngine::Open(MakeBase(), std::move(options));
    ASSERT_TRUE(live_result.ok());
    LiveEngine& live = **live_result;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> last_generation{0};
    std::thread reader([&live, &query, &stop, &last_generation] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = live.Acquire();
        // Generations only move forward under concurrent merges.
        EXPECT_GE(snapshot->generation, last_generation.load());
        last_generation.store(snapshot->generation);
        EXPECT_FALSE(Ranking(*snapshot, query).empty());
      }
    });
    for (VideoId v = 0; v < stream.collection.num_videos(); ++v) {
      (void)live.AppendVideoFrom(stream.collection, v);
      (void)live.Publish();
    }
    for (int attempt = 0; attempt < 20; ++attempt) {
      if (live.Publish().ok()) break;
    }
    stop.store(true, std::memory_order_release);
    reader.join();
    final_ranking = Ranking(*live.Acquire(), query);
    final_generation = live.Acquire()->generation;
    EXPECT_GT(live.Stats().publishes, 0u);
  }

  // Whatever mix of merges succeeded or faulted, a fresh reload of the
  // directory serves the same generation bit-identically.
  IngestOptions reopen_options;
  reopen_options.dir = dir;
  auto reopened = LiveEngine::Open(MakeBase(), reopen_options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Acquire()->generation, final_generation);
  EXPECT_EQ(Ranking(*(*reopened)->Acquire(), query), final_ranking);
  // Merge compaction preserves the shard-per-segment structure.
  EXPECT_EQ((*reopened)->Acquire()->engine->num_shards(),
            (*reopened)->Stats().segments + 1);
}

}  // namespace
}  // namespace ivr
