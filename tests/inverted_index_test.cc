#include "ivr/index/inverted_index.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(InvertedIndexTest, EmptyIndex) {
  InvertedIndex index;
  EXPECT_EQ(index.num_documents(), 0u);
  EXPECT_EQ(index.num_terms(), 0u);
  EXPECT_EQ(index.total_term_count(), 0u);
  EXPECT_DOUBLE_EQ(index.average_document_length(), 0.0);
  EXPECT_EQ(index.Lookup("anything"), nullptr);
}

TEST(InvertedIndexTest, IndexTextBuildsPostings) {
  InvertedIndex index;
  ASSERT_TRUE(index.IndexText(0, "football match football goal").ok());
  ASSERT_TRUE(index.IndexText(1, "weather forecast").ok());
  EXPECT_EQ(index.num_documents(), 2u);

  const PostingList* pl = index.Lookup("football");
  ASSERT_NE(pl, nullptr);
  EXPECT_EQ(pl->document_frequency(), 1u);
  const Posting* p = pl->Find(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->tf, 2u);
}

TEST(InvertedIndexTest, RequiresDenseAscendingIds) {
  InvertedIndex index;
  ASSERT_TRUE(index.IndexText(0, "a b c").ok());
  EXPECT_TRUE(index.IndexText(2, "skip").IsFailedPrecondition());
  EXPECT_TRUE(index.IndexText(0, "again").IsFailedPrecondition());
  EXPECT_TRUE(index.IndexText(1, "next ok").ok());
}

TEST(InvertedIndexTest, StemmingUnifiesQueryAndDocument) {
  InvertedIndex index;
  ASSERT_TRUE(index.IndexText(0, "connected networks").ok());
  // Raw lookup analyses the query term with the same pipeline.
  const PostingList* pl = index.Lookup("connections");
  ASSERT_NE(pl, nullptr);
  EXPECT_EQ(pl->document_frequency(), 1u);
}

TEST(InvertedIndexTest, StopwordsNotIndexed) {
  InvertedIndex index;
  ASSERT_TRUE(index.IndexText(0, "the and of").ok());
  EXPECT_EQ(index.num_terms(), 0u);
  EXPECT_EQ(index.document_length(0), 0u);
  EXPECT_EQ(index.Lookup("the"), nullptr);
}

TEST(InvertedIndexTest, DocumentLengthsAndAverage) {
  InvertedIndex index;
  ASSERT_TRUE(index.IndexText(0, "alpha beta gamma").ok());
  ASSERT_TRUE(index.IndexText(1, "delta").ok());
  EXPECT_EQ(index.document_length(0), 3u);
  EXPECT_EQ(index.document_length(1), 1u);
  EXPECT_EQ(index.document_length(99), 0u);
  EXPECT_DOUBLE_EQ(index.average_document_length(), 2.0);
  EXPECT_EQ(index.total_term_count(), 4u);
}

TEST(InvertedIndexTest, DocumentFrequencyAcrossDocs) {
  InvertedIndex index;
  ASSERT_TRUE(index.IndexText(0, "goal match").ok());
  ASSERT_TRUE(index.IndexText(1, "goal keeper").ok());
  ASSERT_TRUE(index.IndexText(2, "weather").ok());
  EXPECT_EQ(index.DocumentFrequency("goal"), 2u);
  EXPECT_EQ(index.DocumentFrequency("keeper"), 1u);
  EXPECT_EQ(index.DocumentFrequency("absent"), 0u);
}

TEST(InvertedIndexTest, IndexTermsBypassesAnalyzer) {
  InvertedIndex index;
  ASSERT_TRUE(index.IndexTerms(0, {"the", "the", "raw"}).ok());
  // "the" was indexed verbatim because IndexTerms skips analysis.
  EXPECT_NE(index.LookupAnalyzed("the"), nullptr);
  EXPECT_EQ(index.LookupAnalyzed("the")->Find(0)->tf, 2u);
}

TEST(InvertedIndexTest, LookupIdOutOfRange) {
  InvertedIndex index;
  EXPECT_EQ(index.LookupId(0), nullptr);
  EXPECT_EQ(index.LookupId(kInvalidTermId), nullptr);
}

}  // namespace
}  // namespace ivr
