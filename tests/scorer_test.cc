#include "ivr/index/scorer.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

class ScorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 4 documents over a small vocabulary with varied lengths.
    ASSERT_TRUE(index_.IndexText(0, "goal goal match football").ok());
    ASSERT_TRUE(index_.IndexText(1, "goal weather").ok());
    ASSERT_TRUE(
        index_.IndexText(2, "weather forecast rain rain rain").ok());
    ASSERT_TRUE(index_.IndexText(3, "football stadium crowd").ok());
  }

  InvertedIndex index_;
};

TEST_F(ScorerTest, Bm25HigherTfScoresHigher) {
  const Bm25Scorer scorer;
  const size_t df = 2;
  const uint64_t cf = 3;
  const double s1 = scorer.Score(index_, 1, 4, df, cf, 1);
  const double s2 = scorer.Score(index_, 2, 4, df, cf, 1);
  EXPECT_GT(s2, s1);
  EXPECT_GT(s1, 0.0);
}

TEST_F(ScorerTest, Bm25TfSaturates) {
  const Bm25Scorer scorer;
  const double s2 = scorer.Score(index_, 2, 4, 1, 2, 1);
  const double s1 = scorer.Score(index_, 1, 4, 1, 2, 1);
  const double s20 = scorer.Score(index_, 20, 4, 1, 20, 1);
  const double s19 = scorer.Score(index_, 19, 4, 1, 20, 1);
  // Marginal gain shrinks with tf.
  EXPECT_GT(s2 - s1, s20 - s19);
}

TEST_F(ScorerTest, Bm25PenalizesLongDocuments) {
  const Bm25Scorer scorer;
  const double short_doc = scorer.Score(index_, 1, 2, 2, 3, 1);
  const double long_doc = scorer.Score(index_, 1, 5, 2, 3, 1);
  EXPECT_GT(short_doc, long_doc);
}

TEST_F(ScorerTest, Bm25RareTermsWorthMore) {
  const Bm25Scorer scorer;
  const double rare = scorer.Score(index_, 1, 4, 1, 1, 1);
  const double common = scorer.Score(index_, 1, 4, 4, 8, 1);
  EXPECT_GT(rare, common);
}

TEST_F(ScorerTest, Bm25ZeroWhenAbsent) {
  const Bm25Scorer scorer;
  EXPECT_DOUBLE_EQ(scorer.Score(index_, 0, 4, 2, 3, 1), 0.0);
  EXPECT_DOUBLE_EQ(scorer.Score(index_, 1, 4, 0, 0, 1), 0.0);
}

TEST_F(ScorerTest, Bm25QueryTfScales) {
  const Bm25Scorer scorer;
  const double once = scorer.Score(index_, 2, 4, 2, 3, 1);
  const double twice = scorer.Score(index_, 2, 4, 2, 3, 2);
  EXPECT_DOUBLE_EQ(twice, 2.0 * once);
}

TEST_F(ScorerTest, TfIdfBasicOrdering) {
  const TfIdfScorer scorer;
  const double high_tf = scorer.Score(index_, 3, 5, 2, 5, 1);
  const double low_tf = scorer.Score(index_, 1, 5, 2, 5, 1);
  EXPECT_GT(high_tf, low_tf);
  // A term occurring in every document has idf log(1)=0.
  EXPECT_DOUBLE_EQ(scorer.Score(index_, 2, 5, 4, 8, 1), 0.0);
}

TEST_F(ScorerTest, DirichletPrefersHigherTf) {
  const DirichletLmScorer scorer(2000.0);
  const double s2 = scorer.Score(index_, 2, 4, 1, 3, 1);
  const double s1 = scorer.Score(index_, 1, 4, 1, 3, 1);
  EXPECT_GT(s2, s1);
}

TEST_F(ScorerTest, DirichletZeroForUnseenTerm) {
  const DirichletLmScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.Score(index_, 1, 4, 1, 0, 1), 0.0);
}

TEST(MakeScorerTest, FactoryNames) {
  EXPECT_NE(MakeScorer("bm25"), nullptr);
  EXPECT_NE(MakeScorer("tfidf"), nullptr);
  EXPECT_NE(MakeScorer("lm"), nullptr);
  EXPECT_NE(MakeScorer("lm-dirichlet"), nullptr);
  EXPECT_EQ(MakeScorer("pagerank"), nullptr);
  EXPECT_EQ(MakeScorer("bm25")->name(), "bm25");
  EXPECT_EQ(MakeScorer("tfidf")->name(), "tfidf");
  EXPECT_EQ(MakeScorer("lm")->name(), "lm-dirichlet");
}

}  // namespace
}  // namespace ivr
