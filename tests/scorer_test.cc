#include "ivr/index/scorer.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

class ScorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 4 documents over a small vocabulary with varied lengths.
    ASSERT_TRUE(index_.IndexText(0, "goal goal match football").ok());
    ASSERT_TRUE(index_.IndexText(1, "goal weather").ok());
    ASSERT_TRUE(
        index_.IndexText(2, "weather forecast rain rain rain").ok());
    ASSERT_TRUE(index_.IndexText(3, "football stadium crowd").ok());
    stats_ = index_.stats();
  }

  InvertedIndex index_;
  CollectionStats stats_;
};

TEST_F(ScorerTest, Bm25HigherTfScoresHigher) {
  const Bm25Scorer scorer;
  const size_t df = 2;
  const uint64_t cf = 3;
  const double s1 = scorer.Score(stats_, 1, 4, df, cf, 1);
  const double s2 = scorer.Score(stats_, 2, 4, df, cf, 1);
  EXPECT_GT(s2, s1);
  EXPECT_GT(s1, 0.0);
}

TEST_F(ScorerTest, Bm25TfSaturates) {
  const Bm25Scorer scorer;
  const double s2 = scorer.Score(stats_, 2, 4, 1, 2, 1);
  const double s1 = scorer.Score(stats_, 1, 4, 1, 2, 1);
  const double s20 = scorer.Score(stats_, 20, 4, 1, 20, 1);
  const double s19 = scorer.Score(stats_, 19, 4, 1, 20, 1);
  // Marginal gain shrinks with tf.
  EXPECT_GT(s2 - s1, s20 - s19);
}

TEST_F(ScorerTest, Bm25PenalizesLongDocuments) {
  const Bm25Scorer scorer;
  const double short_doc = scorer.Score(stats_, 1, 2, 2, 3, 1);
  const double long_doc = scorer.Score(stats_, 1, 5, 2, 3, 1);
  EXPECT_GT(short_doc, long_doc);
}

TEST_F(ScorerTest, Bm25RareTermsWorthMore) {
  const Bm25Scorer scorer;
  const double rare = scorer.Score(stats_, 1, 4, 1, 1, 1);
  const double common = scorer.Score(stats_, 1, 4, 4, 8, 1);
  EXPECT_GT(rare, common);
}

TEST_F(ScorerTest, Bm25ZeroWhenAbsent) {
  const Bm25Scorer scorer;
  EXPECT_DOUBLE_EQ(scorer.Score(stats_, 0, 4, 2, 3, 1), 0.0);
  EXPECT_DOUBLE_EQ(scorer.Score(stats_, 1, 4, 0, 0, 1), 0.0);
}

TEST_F(ScorerTest, Bm25QueryTfSaturates) {
  const Bm25Scorer scorer;
  const double once = scorer.Score(stats_, 2, 4, 2, 3, 1);
  const double twice = scorer.Score(stats_, 2, 4, 2, 3, 2);
  const double many = scorer.Score(stats_, 2, 4, 2, 3, 100);
  // Okapi's third component: a repeated query term boosts the score but
  // sub-linearly, approaching (k3 + 1) times the single-occurrence score
  // as qtf grows.
  EXPECT_GT(twice, once);
  EXPECT_LT(twice, 2.0 * once);
  EXPECT_GT(many, twice);
  const double k3 = scorer.k3();
  EXPECT_LT(many, (k3 + 1.0) * once);
  // Exact value of the saturation factor for qtf = 2.
  EXPECT_NEAR(twice, once * 2.0 * (k3 + 1.0) / (k3 + 2.0), 1e-12);
}

TEST_F(ScorerTest, Bm25SingleQueryTfUnchangedByK3) {
  // qtf = 1 must reproduce the classic two-component BM25 regardless of
  // k3, so single-occurrence queries are unaffected by the saturation fix.
  const Bm25Scorer default_k3;
  const Bm25Scorer tiny_k3(1.2, 0.75, 0.01);
  EXPECT_DOUBLE_EQ(default_k3.Score(stats_, 2, 4, 2, 3, 1),
                   tiny_k3.Score(stats_, 2, 4, 2, 3, 1));
}

TEST_F(ScorerTest, PreparedPathMatchesScore) {
  // Prepare + ScorePosting is the hot-path decomposition of Score; the
  // two must agree exactly for every scorer.
  const Bm25Scorer bm25;
  const TfIdfScorer tfidf;
  const DirichletLmScorer lm(1500.0);
  for (const Scorer* scorer :
       {static_cast<const Scorer*>(&bm25),
        static_cast<const Scorer*>(&tfidf),
        static_cast<const Scorer*>(&lm)}) {
    for (uint32_t qtf : {1u, 2u, 5u}) {
      const PreparedTerm prepared = scorer->Prepare(stats_, 2, 5, qtf);
      for (uint32_t tf : {1u, 2u, 4u}) {
        for (uint32_t len : {2u, 4u, 5u}) {
          EXPECT_DOUBLE_EQ(
              scorer->ScorePosting(stats_, prepared, tf, len),
              scorer->Score(stats_, tf, len, 2, 5, qtf))
              << scorer->name() << " qtf=" << qtf << " tf=" << tf
              << " len=" << len;
        }
      }
    }
  }
}

TEST_F(ScorerTest, TfIdfBasicOrdering) {
  const TfIdfScorer scorer;
  const double high_tf = scorer.Score(stats_, 3, 5, 2, 5, 1);
  const double low_tf = scorer.Score(stats_, 1, 5, 2, 5, 1);
  EXPECT_GT(high_tf, low_tf);
  // A term occurring in every document has idf log(1)=0.
  EXPECT_DOUBLE_EQ(scorer.Score(stats_, 2, 5, 4, 8, 1), 0.0);
}

TEST_F(ScorerTest, DirichletPrefersHigherTf) {
  const DirichletLmScorer scorer(2000.0);
  const double s2 = scorer.Score(stats_, 2, 4, 1, 3, 1);
  const double s1 = scorer.Score(stats_, 1, 4, 1, 3, 1);
  EXPECT_GT(s2, s1);
}

TEST_F(ScorerTest, DirichletZeroForUnseenTerm) {
  const DirichletLmScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.Score(stats_, 1, 4, 1, 0, 1), 0.0);
}

TEST(MakeScorerTest, FactoryNames) {
  EXPECT_NE(MakeScorer("bm25"), nullptr);
  EXPECT_NE(MakeScorer("tfidf"), nullptr);
  EXPECT_NE(MakeScorer("lm"), nullptr);
  EXPECT_NE(MakeScorer("lm-dirichlet"), nullptr);
  EXPECT_EQ(MakeScorer("pagerank"), nullptr);
  EXPECT_EQ(MakeScorer("bm25")->name(), "bm25");
  EXPECT_EQ(MakeScorer("tfidf")->name(), "tfidf");
  EXPECT_EQ(MakeScorer("lm")->name(), "lm-dirichlet");
}

}  // namespace
}  // namespace ivr
