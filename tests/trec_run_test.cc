#include "ivr/eval/trec_run.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(TrecRunTest, SerializesRankedOrder) {
  std::map<SearchTopicId, ResultList> runs;
  runs[1] = ResultList({{5, 2.0}, {9, 1.0}});
  const std::string text = RunsToTrecFormat(runs, "mytag");
  EXPECT_EQ(text,
            "1 Q0 shot5 1 2 mytag\n"
            "1 Q0 shot9 2 1 mytag\n");
}

TEST(TrecRunTest, RoundTrip) {
  std::map<SearchTopicId, ResultList> runs;
  runs[1] = ResultList({{5, 2.5}, {9, 1.25}});
  runs[3] = ResultList({{2, 0.75}});
  std::string tag;
  const auto parsed =
      RunsFromTrecFormat(RunsToTrecFormat(runs, "t"), &tag).value();
  EXPECT_EQ(tag, "t");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at(1).ShotIds(), runs.at(1).ShotIds());
  EXPECT_DOUBLE_EQ(parsed.at(1).ScoreOf(5), 2.5);
  EXPECT_EQ(parsed.at(3).ShotIds(), runs.at(3).ShotIds());
}

TEST(TrecRunTest, ParseSkipsBlankLines) {
  const auto parsed =
      RunsFromTrecFormat("\n1 Q0 shot5 1 2.0 x\n\n").value();
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(TrecRunTest, ParseRejectsMalformed) {
  EXPECT_TRUE(RunsFromTrecFormat("1 Q0 shot5 1 2.0").status()
                  .IsCorruption());
  EXPECT_TRUE(RunsFromTrecFormat("1 Q0 doc5 1 2.0 x").status()
                  .IsCorruption());
  EXPECT_TRUE(RunsFromTrecFormat("a Q0 shot5 1 2.0 x").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunsFromTrecFormat("1 Q0 shot5 1 abc x").status()
                  .IsInvalidArgument());
}

TEST(TrecRunTest, EmptyInputAndOutput) {
  EXPECT_TRUE(RunsFromTrecFormat("").value().empty());
  EXPECT_EQ(RunsToTrecFormat({}, "x"), "");
}

}  // namespace
}  // namespace ivr
