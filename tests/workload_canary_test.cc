// The perf-canary contract end to end: a clean run of a canary-style
// workload passes its committed bounds, an injected slowdown (the
// OrchestratorConfig::canary_delay_us hook behind the
// IVR_WORKLOAD_CANARY_DELAY_US env var) demonstrably trips them, and
// malformed bounds documents are errors — including bounds naming a phase
// the report lacks, the canary that could otherwise never fire.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "ivr/core/file_util.h"
#include "ivr/video/generator.h"
#include "ivr/workload/orchestrator.h"
#include "ivr/workload/report.h"
#include "ivr/workload/spec.h"

namespace ivr {
namespace workload {
namespace {

WorkloadSpec CanarySpec() {
  Result<WorkloadSpec> spec = ParseWorkload(R"({
    "name": "canary", "seed": 1, "cache": {"mb": 4},
    "phases": [
      {"name": "closed_micro", "mode": "closed", "actors": 2,
       "sessions": 4},
      {"name": "open_micro", "mode": "open", "actors": 2,
       "duration_ms": 200, "rate": 60, "k": 5}
    ]})");
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

Result<RunArtifacts> RunCanary(int64_t canary_delay_us) {
  GeneratorOptions options;
  options.seed = 77;
  options.num_videos = 10;
  options.num_topics = 5;
  OrchestratorConfig config;
  config.collection = GenerateCollection(options).value();
  config.canary_delay_us = canary_delay_us;
  Orchestrator orchestrator(CanarySpec(), std::move(config));
  return orchestrator.Run();
}

// Loose enough for any CI machine, tight enough that a 50ms injected
// delay (1000x the clean p99 on any plausible hardware) must trip it.
const char* kBounds = R"({
  "phases": {
    "closed_micro": {"max_failures": 0, "min_ops": 4},
    "open_micro": {"max_failures": 0, "min_ops": 5, "max_p99_us": 20000}
  }})";

TEST(WorkloadCanaryTest, CleanRunPassesBounds) {
  const Result<RunArtifacts> run = RunCanary(0);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const Result<std::vector<std::string>> violations =
      CheckBounds(run->report, kBounds);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  EXPECT_TRUE(violations->empty())
      << "unexpected violation: " << violations->front();
}

TEST(WorkloadCanaryTest, InjectedSlowdownTripsTheBounds) {
  const Result<RunArtifacts> run = RunCanary(50000);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const Result<std::vector<std::string>> violations =
      CheckBounds(run->report, kBounds);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  ASSERT_FALSE(violations->empty())
      << "a 50ms injected delay must violate max_p99_us 20000";
  bool p99_violation = false;
  for (const std::string& violation : *violations) {
    if (violation.find("open_micro") != std::string::npos &&
        violation.find("max_p99_us") != std::string::npos) {
      p99_violation = true;
    }
  }
  EXPECT_TRUE(p99_violation) << violations->front();
}

WorkloadSpec IngestCanarySpec() {
  Result<WorkloadSpec> spec = ParseWorkload(R"({
    "name": "ingest_canary", "seed": 5, "cache": {"mb": 4},
    "ingest": {"stream_seed": 7, "stream_videos": 4, "stream_topics": 5,
               "merge_after": 3, "background_merge": true},
    "phases": [
      {"name": "ingest_micro", "mode": "open", "actors": 2,
       "duration_ms": 400, "rate": 40, "k": 5,
       "writes": {"rate": 40, "publish_rate": 20}}
    ]})");
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

Result<RunArtifacts> RunIngestCanary(int64_t canary_delay_us,
                                     const char* dir_name) {
  GeneratorOptions options;
  options.seed = 77;
  options.num_videos = 10;
  options.num_topics = 5;
  OrchestratorConfig config;
  config.collection = GenerateCollection(options).value();
  config.ingest_dir = ::testing::TempDir() + "/" + dir_name;
  if (FileExists(config.ingest_dir)) {
    const auto entries = ListDirectory(config.ingest_dir);
    if (entries.ok()) {
      for (const std::string& entry : *entries) {
        (void)RemoveFile(config.ingest_dir + "/" + entry);
      }
    }
  }
  config.canary_delay_us = canary_delay_us;
  Orchestrator orchestrator(IngestCanarySpec(), std::move(config));
  return orchestrator.Run();
}

// The clean bound is deliberately loose (2s): a micro-delta publish is
// single-digit milliseconds, but a ctest -jN machine can starve the
// writer thread for hundreds of milliseconds, and the clean canary must
// not flake on scheduling noise. The trip test uses a tight 250ms bound
// instead, which its injected 300ms delay is guaranteed to exceed.
const char* kCleanIngestBounds = R"({
  "phases": {
    "ingest_micro": {"max_failures": 0, "max_publish_p99_us": 2000000}
  }})";
const char* kTightIngestBounds = R"({
  "phases": {
    "ingest_micro": {"max_failures": 0, "max_publish_p99_us": 250000}
  }})";

TEST(WorkloadCanaryTest, CleanIngestRunPassesPublishLatencyBound) {
  const Result<RunArtifacts> run = RunIngestCanary(0, "canary_ingest_ok");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->report.phases.size(), 1u);
  EXPECT_GT(run->report.phases[0].publish_latency.count, 0u);
  const Result<std::vector<std::string>> violations =
      CheckBounds(run->report, kCleanIngestBounds);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  EXPECT_TRUE(violations->empty())
      << "unexpected violation: " << violations->front();
}

TEST(WorkloadCanaryTest, SlowPublishTripsThePublishLatencyBound) {
  const Result<RunArtifacts> run =
      RunIngestCanary(300000, "canary_ingest_slow");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const Result<std::vector<std::string>> violations =
      CheckBounds(run->report, kTightIngestBounds);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  bool publish_violation = false;
  for (const std::string& violation : *violations) {
    if (violation.find("ingest_micro") != std::string::npos &&
        violation.find("max_publish_p99_us") != std::string::npos) {
      publish_violation = true;
    }
  }
  EXPECT_TRUE(publish_violation)
      << "a 300ms injected publish delay must violate max_publish_p99_us";
}

/// A hand-built report for the pure bounds-evaluation cases.
WorkloadReport TinyReport() {
  WorkloadReport report;
  report.workload = "tiny";
  report.seed = 1;
  PhaseResult phase;
  phase.name = "serve";
  phase.ops = 10;
  phase.failures = 2;
  phase.achieved_rate = 100.0;
  report.phases.push_back(std::move(phase));
  return report;
}

TEST(WorkloadCanaryTest, ViolationsNamePhaseAndBound) {
  const Result<std::vector<std::string>> violations = CheckBounds(
      TinyReport(),
      R"({"phases": {"serve": {"max_failures": 0, "min_ops": 50,
                               "min_achieved_rate": 500}}})");
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  ASSERT_EQ(violations->size(), 3u);
  EXPECT_NE((*violations)[0].find("failures 2 > max_failures 0"),
            std::string::npos)
      << (*violations)[0];
  EXPECT_NE((*violations)[1].find("ops 10 < min_ops 50"),
            std::string::npos)
      << (*violations)[1];
  EXPECT_NE((*violations)[2].find("min_achieved_rate"), std::string::npos)
      << (*violations)[2];
}

TEST(WorkloadCanaryTest, PublishBoundOnPhaseWithoutPublishesIsAViolation) {
  // A publish-latency bound that nothing ever measures must fire, the
  // same way a bound naming a missing phase is an error.
  const Result<std::vector<std::string>> violations = CheckBounds(
      TinyReport(),
      R"({"phases": {"serve": {"max_publish_p99_us": 100000}}})");
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  ASSERT_EQ(violations->size(), 1u);
  EXPECT_NE((*violations)[0].find("no publishes were measured"),
            std::string::npos)
      << (*violations)[0];
}

TEST(WorkloadCanaryTest, SatisfiedBoundsProduceNoViolations) {
  const Result<std::vector<std::string>> violations = CheckBounds(
      TinyReport(),
      R"({"phases": {"serve": {"max_failures": 2, "min_ops": 10}}})");
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  EXPECT_TRUE(violations->empty());
}

TEST(WorkloadCanaryTest, BoundsNamingAMissingPhaseAreAnError) {
  // A renamed phase must not silently stop being checked.
  const Result<std::vector<std::string>> violations = CheckBounds(
      TinyReport(), R"({"phases": {"renamed": {"max_failures": 0}}})");
  ASSERT_FALSE(violations.ok());
  EXPECT_NE(violations.status().ToString().find("renamed"),
            std::string::npos)
      << violations.status().ToString();
}

TEST(WorkloadCanaryTest, MalformedBoundsAreErrors) {
  EXPECT_FALSE(CheckBounds(TinyReport(), "not json").ok());
  EXPECT_FALSE(CheckBounds(TinyReport(), "[]").ok());
  // Unknown top-level key.
  EXPECT_FALSE(
      CheckBounds(TinyReport(), R"({"limits": {}})").ok());
  // Unknown bound key inside a phase.
  const Result<std::vector<std::string>> unknown_bound = CheckBounds(
      TinyReport(), R"({"phases": {"serve": {"max_latency": 5}}})");
  ASSERT_FALSE(unknown_bound.ok());
  EXPECT_NE(unknown_bound.status().ToString().find("max_latency"),
            std::string::npos);
  // Non-numeric bound value.
  EXPECT_FALSE(
      CheckBounds(TinyReport(),
                  R"({"phases": {"serve": {"min_ops": "ten"}}})")
          .ok());
}

}  // namespace
}  // namespace workload
}  // namespace ivr
