#include "ivr/adaptive/profile_learner.h"

#include <gtest/gtest.h>

#include "ivr/video/generator.h"

namespace ivr {
namespace {

class ProfileLearnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 101;
    options.num_topics = 4;
    options.num_videos = 6;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
  }

  // Positive evidence on `n` shots of `topic`.
  std::vector<RelevanceEvidence> PositiveOn(TopicLabel topic, size_t n,
                                            double weight = 1.0) {
    std::vector<RelevanceEvidence> out;
    for (ShotId shot :
         generated_->collection.ShotsWithPrimaryTopic(topic)) {
      out.push_back(RelevanceEvidence{shot, weight});
      if (out.size() >= n) break;
    }
    return out;
  }

  std::unique_ptr<GeneratedCollection> generated_;
};

TEST_F(ProfileLearnerTest, PositiveEvidenceBuildsInterest) {
  UserProfile profile("u");
  const ProfileLearner learner;
  learner.UpdateFromEvidence(PositiveOn(2, 5), generated_->collection,
                             &profile);
  EXPECT_GT(profile.Interest(2), 0.0);
  EXPECT_DOUBLE_EQ(profile.Interest(0), 0.0);
}

TEST_F(ProfileLearnerTest, ProfileStaysNormalized) {
  UserProfile profile("u");
  const ProfileLearner learner;
  learner.UpdateFromEvidence(PositiveOn(1, 4), generated_->collection,
                             &profile);
  learner.UpdateFromEvidence(PositiveOn(2, 4), generated_->collection,
                             &profile);
  double total = 0.0;
  for (const auto& [topic, w] : profile.interests()) {
    (void)topic;
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ProfileLearnerTest, RepeatedSessionsShiftInterests) {
  // Declared sports fan keeps watching finance; over sessions the profile
  // follows the behaviour.
  UserProfile profile("drifter");
  profile.SetInterest(1, 1.0);  // declared: topic 1
  const ProfileLearner learner;
  const double before = profile.Interest(1);
  for (int session = 0; session < 6; ++session) {
    learner.UpdateFromEvidence(PositiveOn(3, 5), generated_->collection,
                               &profile);
  }
  EXPECT_GT(profile.Interest(3), profile.Interest(1));
  EXPECT_LT(profile.Interest(1), before);
}

TEST_F(ProfileLearnerTest, NegativeEvidenceSuppresses) {
  UserProfile profile("u");
  profile.SetInterest(0, 0.5);
  profile.SetInterest(1, 0.5);
  const ProfileLearner learner;
  std::vector<RelevanceEvidence> negative;
  for (const RelevanceEvidence& e : PositiveOn(0, 4)) {
    negative.push_back(RelevanceEvidence{e.shot, -2.0});
  }
  learner.UpdateFromEvidence(negative, generated_->collection, &profile);
  EXPECT_LT(profile.Interest(0), profile.Interest(1));
}

TEST_F(ProfileLearnerTest, EvidenceOnUnknownShotsIgnored) {
  UserProfile profile("u");
  const ProfileLearner learner;
  learner.UpdateFromEvidence({RelevanceEvidence{9999999, 5.0}},
                             generated_->collection, &profile);
  EXPECT_TRUE(profile.interests().empty());
}

TEST_F(ProfileLearnerTest, RetentionControlsForgetting) {
  ProfileLearner::Options fast_forget;
  fast_forget.retention = 0.1;
  ProfileLearner::Options slow_forget;
  slow_forget.retention = 0.99;

  for (const auto& [options, expect_flip] :
       {std::pair{fast_forget, true}, std::pair{slow_forget, false}}) {
    UserProfile profile("u");
    profile.SetInterest(0, 1.0);
    const ProfileLearner learner(options);
    learner.UpdateFromEvidence(PositiveOn(2, 3, 0.5),
                               generated_->collection, &profile);
    if (expect_flip) {
      EXPECT_GT(profile.Interest(2), profile.Interest(0));
    } else {
      EXPECT_GT(profile.Interest(0), profile.Interest(2));
    }
  }
}

TEST_F(ProfileLearnerTest, EmptyEvidenceOnlyDecaysAndNormalizes) {
  UserProfile profile("u");
  profile.SetInterest(0, 0.3);
  profile.SetInterest(1, 0.7);
  const ProfileLearner learner;
  learner.UpdateFromEvidence({}, generated_->collection, &profile);
  // Relative proportions survive decay + renormalisation.
  EXPECT_NEAR(profile.Interest(0), 0.3, 1e-9);
  EXPECT_NEAR(profile.Interest(1), 0.7, 1e-9);
}

}  // namespace
}  // namespace ivr
