#include "ivr/core/file_util.h"

#include <dirent.h>
#include <sys/stat.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/core/fault_injection.h"

namespace ivr {
namespace {

/// Fresh empty scratch directory per test, so temp-file litter from an
/// aborted atomic write cannot hide among other tests' files.
std::string MakeScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    for (dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
      const std::string entry = e->d_name;
      if (entry != "." && entry != "..") {
        ::unlink((dir + "/" + entry).c_str());
      }
    }
    ::closedir(d);
  }
  return dir;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> entries;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return entries;
  for (dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    const std::string entry = e->d_name;
    if (entry != "." && entry != "..") entries.push_back(entry);
  }
  ::closedir(d);
  return entries;
}

TEST(WriteFileAtomicTest, WritesAndReplaces) {
  const std::string dir = MakeScratchDir("ivr_atomic_basic");
  const std::string path = dir + "/data.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second, longer content").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "second, longer content");
  // Only the target remains: no temp files after successful writes.
  EXPECT_EQ(ListDir(dir), std::vector<std::string>{"data.txt"});
}

TEST(WriteFileAtomicTest, FailsCleanlyOnBadDirectory) {
  EXPECT_TRUE(WriteFileAtomic("/nonexistent-dir/x", "y").IsIOError());
}

TEST(WriteFileAtomicTest, KillMidWriteSweepLeavesOldContentIntact) {
  // Simulated crash at every stage of the atomic write protocol: the
  // target must still hold the complete old content and no temp file may
  // survive. This is the crash-safety acceptance criterion.
  const char* kStages[] = {"file.atomic.write", "file.atomic.sync",
                           "file.atomic.rename"};
  int stage_index = 0;
  for (const char* stage : kStages) {
    const std::string dir = MakeScratchDir(
        "ivr_atomic_kill_" + std::to_string(stage_index++));
    const std::string path = dir + "/snapshot.txt";
    ASSERT_TRUE(WriteFileAtomic(path, "old snapshot").ok());

    {
      ScopedFaultInjection chaos(std::string(stage) + ":1", 1);
      ASSERT_TRUE(chaos.status().ok());
      const Status status = WriteFileAtomic(path, "new snapshot");
      EXPECT_TRUE(status.IsIOError()) << stage << ": " << status.ToString();
    }

    EXPECT_EQ(ReadFileToString(path).value(), "old snapshot")
        << "stage " << stage << " damaged the old content";
    EXPECT_EQ(ListDir(dir), std::vector<std::string>{"snapshot.txt"})
        << "stage " << stage << " left temp-file litter";

    // The same write succeeds once the fault clears.
    ASSERT_TRUE(WriteFileAtomic(path, "new snapshot").ok());
    EXPECT_EQ(ReadFileToString(path).value(), "new snapshot");
  }
}

TEST(FileUtilTest, ExistsAndRemove) {
  const std::string dir = MakeScratchDir("ivr_file_exists");
  const std::string path = dir + "/f";
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  // Removing a missing file is not an error.
  EXPECT_TRUE(RemoveFile(path).ok());
}

TEST(FileUtilTest, ReadWriteSitesAreInjectable) {
  const std::string dir = MakeScratchDir("ivr_file_sites");
  const std::string path = dir + "/f";
  ASSERT_TRUE(WriteFileAtomic(path, "content").ok());
  {
    ScopedFaultInjection chaos("file.read:1,file.write:1", 1);
    ASSERT_TRUE(chaos.status().ok());
    EXPECT_TRUE(ReadFileToString(path).status().IsIOError());
    EXPECT_TRUE(WriteStringToFile(path, "y").IsIOError());
  }
  // The injected write failure left the file untouched.
  EXPECT_EQ(ReadFileToString(path).value(), "content");
}

}  // namespace
}  // namespace ivr
