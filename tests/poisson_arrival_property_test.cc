// Property suite for the open-loop rate clocks: Poisson arrival schedules
// are deterministic per seed, hit the offered rate empirically across many
// seeds, and the pacer tracks an absolute schedule with zero compounding
// drift — it never sleeps past a deadline already behind it. The pacer
// runs against a frozen injectable clock, so the properties are exact,
// not timing-dependent.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ivr/core/arrivals.h"

namespace ivr {
namespace {

TEST(PoissonArrivalPropertyTest, ScheduleIsDeterministicPerSeed) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const std::vector<int64_t> first =
        PoissonScheduleUs(200.0, 1000000, seed);
    const std::vector<int64_t> second =
        PoissonScheduleUs(200.0, 1000000, seed);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
  EXPECT_NE(PoissonScheduleUs(200.0, 1000000, 1),
            PoissonScheduleUs(200.0, 1000000, 2));
}

TEST(PoissonArrivalPropertyTest, ScheduleIsSortedAndInRange) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<int64_t> schedule =
        PoissonScheduleUs(500.0, 2000000, seed);
    int64_t prev = 0;
    for (const int64_t offset : schedule) {
      EXPECT_GE(offset, prev);
      EXPECT_GE(offset, 0);
      EXPECT_LT(offset, 2000000);
      prev = offset;
    }
  }
}

TEST(PoissonArrivalPropertyTest, StreamMatchesSchedule) {
  PoissonArrivalStream stream(300.0, 9);
  const std::vector<int64_t> schedule = PoissonScheduleUs(300.0, 500000, 9);
  for (const int64_t offset : schedule) {
    EXPECT_EQ(stream.NextUs(), offset);
  }
  // The next draw is the first one past the window.
  EXPECT_GE(stream.NextUs(), 500000);
}

TEST(PoissonArrivalPropertyTest, EmpiricalRateWithinTolerance) {
  // rate * duration = 1000 expected arrivals per seed. A Poisson count has
  // stddev sqrt(1000) ~ 32, so +/-20% per seed is > 6 sigma (won't flake)
  // while the 20-seed aggregate should land within +/-5%.
  constexpr double kRate = 500.0;
  constexpr int64_t kDurationUs = 2000000;
  constexpr double kExpected = 1000.0;
  double total = 0.0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const double count = static_cast<double>(
        PoissonScheduleUs(kRate, kDurationUs, seed).size());
    EXPECT_GT(count, kExpected * 0.8) << "seed " << seed;
    EXPECT_LT(count, kExpected * 1.2) << "seed " << seed;
    total += count;
  }
  const double mean = total / 20.0;
  EXPECT_GT(mean, kExpected * 0.95);
  EXPECT_LT(mean, kExpected * 1.05);
}

TEST(PoissonArrivalPropertyTest, TinyRateMayProduceEmptySchedule) {
  // Legitimately empty at tiny rate*duration products; must not crash or
  // return negative offsets.
  const std::vector<int64_t> schedule = PoissonScheduleUs(1.0, 1000, 3);
  for (const int64_t offset : schedule) {
    EXPECT_GE(offset, 0);
    EXPECT_LT(offset, 1000);
  }
}

/// A frozen clock: now() only advances when sleep() is called, and by
/// exactly the requested amount — so pacing arithmetic is observable
/// without real time.
struct FrozenClock {
  int64_t now = 1000000;
  std::vector<int64_t> sleeps;

  OpenLoopPacer MakePacer() {
    return OpenLoopPacer([this] { return now; },
                         [this](int64_t us) {
                           sleeps.push_back(us);
                           now += us;
                         });
  }
};

TEST(PoissonArrivalPropertyTest, PacerLandsExactlyOnEveryDeadline) {
  FrozenClock clock;
  OpenLoopPacer pacer = clock.MakePacer();
  pacer.Start();
  const int64_t origin = clock.now;

  const std::vector<int64_t> schedule = PoissonScheduleUs(100.0, 300000, 4);
  ASSERT_FALSE(schedule.empty());
  for (const int64_t offset : schedule) {
    const int64_t late = pacer.WaitUntil(offset);
    EXPECT_EQ(late, 0);
    // Absolute anchoring: after the wait, now is origin + offset exactly —
    // sleeps never accumulate rounding or overshoot (no drift).
    EXPECT_EQ(clock.now, origin + offset);
  }
}

TEST(PoissonArrivalPropertyTest, PacerNeverSleepsPastADeadlineBehindIt) {
  FrozenClock clock;
  OpenLoopPacer pacer = clock.MakePacer();
  pacer.Start();
  const int64_t origin = clock.now;

  // Simulate a slow operation: 5000us of work after an arrival at 1000us.
  EXPECT_EQ(pacer.WaitUntil(1000), 0);
  clock.now += 5000;  // now at offset 6000, next arrivals already due

  const size_t sleeps_before = clock.sleeps.size();
  EXPECT_EQ(pacer.WaitUntil(2000), 4000);  // 4000us late, no sleep
  EXPECT_EQ(pacer.WaitUntil(6000), 0);     // exactly now: no sleep, not late
  EXPECT_EQ(clock.sleeps.size(), sleeps_before);

  // The next future deadline is honored from the original origin — the
  // lateness above did not shift the schedule.
  EXPECT_EQ(pacer.WaitUntil(9000), 0);
  EXPECT_EQ(clock.now, origin + 9000);
}

TEST(PoissonArrivalPropertyTest, PacerDriftStaysZeroOverLongSchedules) {
  FrozenClock clock;
  OpenLoopPacer pacer = clock.MakePacer();
  pacer.Start();
  const int64_t origin = clock.now;

  // Alternate on-time and late operations for a long schedule; every
  // on-time deadline must still land exactly (a relative-sleep pacer
  // would accumulate the work time of every late op).
  int64_t offset = 0;
  for (int i = 0; i < 1000; ++i) {
    offset += 100;
    const int64_t late = pacer.WaitUntil(offset);
    if (i % 2 == 0) {
      EXPECT_EQ(late, 0) << "op " << i;
      EXPECT_EQ(clock.now, origin + offset) << "op " << i;
      clock.now += 150;  // work longer than the next gap
    }
  }
}

TEST(PoissonArrivalPropertyTest, NonPositiveRateIsClampedNotDividedBy) {
  // The constructor contract: callers validate, but a bad rate must not
  // produce NaN/infinite offsets.
  PoissonArrivalStream stream(0.0, 1);
  const int64_t first = stream.NextUs();
  EXPECT_GE(first, 0);
  EXPECT_LT(first, 100000000);  // ~1/s clamp, not infinity
}

}  // namespace
}  // namespace ivr
