#include "ivr/sim/replayer.h"

#include <gtest/gtest.h>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class ReplayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 61;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    backend_ = std::make_unique<StaticBackend>(*engine_);

    // Record two simulated sessions into the log.
    SessionSimulator simulator(generated_->collection, generated_->qrels);
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      SessionSimulator::RunConfig config;
      config.seed = seed;
      config.session_id = "s" + std::to_string(seed);
      simulator
          .Run(backend_.get(), generated_->topics.topics[0], NoviceUser(),
               config, &log_)
          .value();
    }
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<StaticBackend> backend_;
  SessionLog log_;
};

TEST_F(ReplayerTest, ReplayAllCoversEverySession) {
  const LogReplayer replayer;
  const auto sessions = replayer.ReplayAll(log_, backend_.get()).value();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].session_id, "s1");
  EXPECT_EQ(sessions[1].session_id, "s2");
  for (const ReplayedSession& session : sessions) {
    EXPECT_FALSE(session.queries.empty());
    EXPECT_EQ(session.queries.size(), session.per_query_results.size());
    for (const ResultList& results : session.per_query_results) {
      EXPECT_FALSE(results.empty());
    }
  }
}

TEST_F(ReplayerTest, StaticBackendReplayMatchesDirectSearch) {
  const LogReplayer replayer(200);
  const auto session =
      replayer.ReplaySession(log_.EventsForSession("s1"), backend_.get())
          .value();
  for (size_t q = 0; q < session.queries.size(); ++q) {
    Query query;
    query.text = session.queries[q];
    const ResultList direct = engine_->Search(query, 200);
    ASSERT_EQ(direct.size(), session.per_query_results[q].size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(direct.at(i).shot,
                session.per_query_results[q].at(i).shot);
    }
  }
}

TEST_F(ReplayerTest, AdaptiveBackendSeesLoggedFeedback) {
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  const LogReplayer replayer;
  replayer.ReplaySession(log_.EventsForSession("s1"), &adaptive).value();
  // After replay the adaptive backend holds the session's events.
  EXPECT_EQ(adaptive.session_events().size(),
            log_.EventsForSession("s1").size());
}

TEST_F(ReplayerTest, RejectsMixedSessions) {
  const LogReplayer replayer;
  EXPECT_TRUE(replayer.ReplaySession(log_.events(), backend_.get())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ReplayerTest, RejectsNullBackend) {
  const LogReplayer replayer;
  EXPECT_TRUE(replayer.ReplaySession({}, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ReplayerTest, EmptyLogYieldsNoSessions) {
  const LogReplayer replayer;
  EXPECT_TRUE(
      replayer.ReplayAll(SessionLog(), backend_.get()).value().empty());
}

TEST_F(ReplayerTest, RoundTripThroughTextFormatPreservesReplay) {
  // Serialize -> parse -> replay must equal replaying the original log.
  const SessionLog parsed = SessionLog::Parse(log_.Serialize()).value();
  const LogReplayer replayer;
  const auto original = replayer.ReplayAll(log_, backend_.get()).value();
  const auto reparsed =
      replayer.ReplayAll(parsed, backend_.get()).value();
  ASSERT_EQ(original.size(), reparsed.size());
  for (size_t s = 0; s < original.size(); ++s) {
    ASSERT_EQ(original[s].queries, reparsed[s].queries);
    for (size_t q = 0; q < original[s].per_query_results.size(); ++q) {
      EXPECT_EQ(original[s].per_query_results[q].ShotIds(),
                reparsed[s].per_query_results[q].ShotIds());
    }
  }
}

}  // namespace
}  // namespace ivr
