#include "ivr/iface/session_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"

namespace ivr {
namespace {

InteractionEvent MakeEvent(TimeMs time, const std::string& session,
                           EventType type, ShotId shot = kInvalidShotId,
                           double value = 0.0,
                           const std::string& text = "") {
  InteractionEvent ev;
  ev.time = time;
  ev.session_id = session;
  ev.user_id = "user-" + session;
  ev.topic = 3;
  ev.type = type;
  ev.shot = shot;
  ev.value = value;
  ev.text = text;
  return ev;
}

TEST(SessionLogTest, AppendAndCount) {
  SessionLog log;
  EXPECT_TRUE(log.empty());
  log.Append(MakeEvent(1, "a", EventType::kQuerySubmit, kInvalidShotId,
                       0.0, "goal"));
  log.Append(MakeEvent(2, "a", EventType::kClickKeyframe, 7));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.CountType(EventType::kQuerySubmit), 1u);
  EXPECT_EQ(log.CountType(EventType::kSeek), 0u);
}

TEST(SessionLogTest, EventLineRoundTrip) {
  const InteractionEvent original = MakeEvent(
      12345, "sess1", EventType::kPlayStop, 42, 3500.0, "");
  const std::string line = SessionLog::EventToLine(original);
  const InteractionEvent parsed = SessionLog::LineToEvent(line).value();
  EXPECT_EQ(parsed.time, original.time);
  EXPECT_EQ(parsed.session_id, original.session_id);
  EXPECT_EQ(parsed.user_id, original.user_id);
  EXPECT_EQ(parsed.topic, original.topic);
  EXPECT_EQ(parsed.type, original.type);
  EXPECT_EQ(parsed.shot, original.shot);
  EXPECT_DOUBLE_EQ(parsed.value, original.value);
  EXPECT_EQ(parsed.text, original.text);
}

TEST(SessionLogTest, QueryTextRoundTrips) {
  const InteractionEvent original = MakeEvent(
      1, "s", EventType::kQuerySubmit, kInvalidShotId, 0.0,
      "football goal 2008");
  const InteractionEvent parsed =
      SessionLog::LineToEvent(SessionLog::EventToLine(original)).value();
  EXPECT_EQ(parsed.text, "football goal 2008");
}

TEST(SessionLogTest, MissingShotSerializedAsDash) {
  const std::string line = SessionLog::EventToLine(
      MakeEvent(1, "s", EventType::kQuerySubmit));
  EXPECT_NE(line.find("\t-\t"), std::string::npos);
  const InteractionEvent parsed = SessionLog::LineToEvent(line).value();
  EXPECT_EQ(parsed.shot, kInvalidShotId);
}

TEST(SessionLogTest, TabsInTextSanitized) {
  const InteractionEvent original = MakeEvent(
      1, "s", EventType::kQuerySubmit, kInvalidShotId, 0.0,
      "bad\ttext\nwith breaks");
  const InteractionEvent parsed =
      SessionLog::LineToEvent(SessionLog::EventToLine(original)).value();
  EXPECT_EQ(parsed.text, "bad text with breaks");
}

TEST(SessionLogTest, SerializeParseRoundTrip) {
  SessionLog log;
  log.Append(MakeEvent(1, "a", EventType::kQuerySubmit, kInvalidShotId,
                       0.0, "news"));
  log.Append(MakeEvent(2, "a", EventType::kResultDisplayed, 5, 0.0));
  log.Append(MakeEvent(3, "b", EventType::kClickKeyframe, 9));
  log.Append(MakeEvent(4, "b", EventType::kSessionEnd));

  const SessionLog parsed = SessionLog::Parse(log.Serialize()).value();
  ASSERT_EQ(parsed.size(), log.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed.events()[i].type, log.events()[i].type);
    EXPECT_EQ(parsed.events()[i].time, log.events()[i].time);
    EXPECT_EQ(parsed.events()[i].session_id, log.events()[i].session_id);
  }
}

TEST(SessionLogTest, ParseSkipsBlankLines) {
  const SessionLog parsed = SessionLog::Parse("\n\n").value();
  EXPECT_TRUE(parsed.empty());
}

TEST(SessionLogTest, ParseRejectsMalformedLines) {
  EXPECT_TRUE(SessionLog::Parse("not a log line").status().IsCorruption());
  EXPECT_TRUE(SessionLog::LineToEvent("1\ts\tu\t3\tbogus_event\t-\t0\t")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SessionLog::LineToEvent("x\ts\tu\t3\tseek\t1\t0\t")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SessionLog::LineToEvent("1\ts\tu\t-2\tseek\t1\t0\t")
                  .status()
                  .IsCorruption());
}

TEST(SessionLogTest, SessionIdsFirstSeenOrder) {
  SessionLog log;
  log.Append(MakeEvent(1, "b", EventType::kSessionEnd));
  log.Append(MakeEvent(2, "a", EventType::kSessionEnd));
  log.Append(MakeEvent(3, "b", EventType::kSessionEnd));
  EXPECT_EQ(log.SessionIds(), (std::vector<std::string>{"b", "a"}));
}

// --- SessionLogWriter: the appendable journal ---

TEST(SessionLogWriterTest, IncrementalAppendLoadsAsOneLog) {
  const std::string path = ::testing::TempDir() + "/ivr_journal.tsv";
  std::remove(path.c_str());
  SessionLogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append(MakeEvent(1, "a", EventType::kQuerySubmit,
                                      kInvalidShotId, 0.0, "news"))
                  .ok());
  // Each Append is one fsynced chunk; a batch is one chunk too.
  ASSERT_TRUE(writer
                  .Append({MakeEvent(2, "a", EventType::kClickKeyframe, 7),
                           MakeEvent(3, "a", EventType::kSessionEnd)})
                  .ok());
  EXPECT_TRUE(writer.Append(std::vector<InteractionEvent>{}).ok());
  ASSERT_TRUE(writer.Close().ok());

  const SessionLog loaded = SessionLog::Load(path).value();
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.events()[0].text, "news");
  EXPECT_EQ(loaded.events()[2].type, EventType::kSessionEnd);
  std::remove(path.c_str());
}

TEST(SessionLogWriterTest, ReopenContinuesTheJournal) {
  const std::string path = ::testing::TempDir() + "/ivr_journal2.tsv";
  std::remove(path.c_str());
  {
    SessionLogWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(
        writer.Append(MakeEvent(1, "a", EventType::kQuerySubmit)).ok());
  }  // destructor closes
  {
    SessionLogWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(
        writer.Append(MakeEvent(2, "a", EventType::kSessionEnd)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_EQ(SessionLog::Load(path).value().size(), 2u);
  std::remove(path.c_str());
}

TEST(SessionLogWriterTest, TornTailStrictFailsSalvageRecovers) {
  const std::string path = ::testing::TempDir() + "/ivr_journal3.tsv";
  std::remove(path.c_str());
  SessionLogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(
      writer.Append(MakeEvent(1, "a", EventType::kQuerySubmit)).ok());
  ASSERT_TRUE(
      writer.Append(MakeEvent(2, "a", EventType::kClickKeyframe, 7)).ok());
  ASSERT_TRUE(writer.Close().ok());

  // Crash mid-append: the file ends in a torn (truncated) chunk.
  const std::string bytes = ReadFileToString(path).value();
  ASSERT_TRUE(
      WriteStringToFile(path, bytes.substr(0, bytes.size() - 5)).ok());

  EXPECT_TRUE(SessionLog::Load(path).status().IsCorruption());
  size_t dropped_chunks = 0;
  const SessionLog salvaged =
      SessionLog::LoadSalvage(path, &dropped_chunks).value();
  // Every fully fsynced chunk before the tear survives.
  EXPECT_EQ(salvaged.size(), 1u);
  EXPECT_EQ(dropped_chunks, 1u);
  std::remove(path.c_str());
}

TEST(SessionLogWriterTest, AppendFaultSiteSurfacesAsError) {
  const std::string path = ::testing::TempDir() + "/ivr_journal4.tsv";
  std::remove(path.c_str());
  SessionLogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  {
    ScopedFaultInjection chaos("sessionlog.append:1.0", 7);
    EXPECT_TRUE(writer.Append(MakeEvent(1, "a", EventType::kQuerySubmit))
                    .IsIOError());
  }
  // After the fault clears the journal is still usable.
  EXPECT_TRUE(
      writer.Append(MakeEvent(2, "a", EventType::kSessionEnd)).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(SessionLog::Load(path).value().size(), 1u);
  std::remove(path.c_str());
}

TEST(SessionLogWriterTest, AppendWithoutOpenFails) {
  SessionLogWriter writer;
  EXPECT_TRUE(writer.Append(MakeEvent(1, "a", EventType::kSessionEnd))
                  .IsFailedPrecondition());
  EXPECT_FALSE(writer.is_open());
  EXPECT_TRUE(writer.Close().ok());
}

TEST(SessionLogTest, EventsForSessionFilters) {
  SessionLog log;
  log.Append(MakeEvent(1, "a", EventType::kQuerySubmit, kInvalidShotId,
                       0.0, "x"));
  log.Append(MakeEvent(2, "b", EventType::kClickKeyframe, 1));
  log.Append(MakeEvent(3, "a", EventType::kSessionEnd));
  const auto a_events = log.EventsForSession("a");
  ASSERT_EQ(a_events.size(), 2u);
  EXPECT_EQ(a_events[0].type, EventType::kQuerySubmit);
  EXPECT_EQ(a_events[1].type, EventType::kSessionEnd);
  EXPECT_TRUE(log.EventsForSession("zzz").empty());
}

}  // namespace
}  // namespace ivr
