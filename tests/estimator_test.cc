#include "ivr/feedback/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ivr {
namespace {

InteractionEvent MakeEvent(TimeMs time, EventType type, ShotId shot,
                           double value = 0.0) {
  InteractionEvent ev;
  ev.time = time;
  ev.type = type;
  ev.shot = shot;
  ev.value = value;
  return ev;
}

std::vector<InteractionEvent> EngagedAndIgnored() {
  return {
      MakeEvent(0, EventType::kResultDisplayed, 1, 0.0),
      MakeEvent(0, EventType::kResultDisplayed, 2, 1.0),
      MakeEvent(1000, EventType::kClickKeyframe, 1),
      MakeEvent(2000, EventType::kPlayStart, 1),
      MakeEvent(9000, EventType::kPlayStop, 1, 7000.0),
  };
}

TEST(EstimatorTest, PositiveForEngagedNegativeForBrowsedPast) {
  const LinearWeighting scheme;
  const ImplicitRelevanceEstimator estimator(scheme);
  const auto evidence = estimator.Estimate(EngagedAndIgnored(), nullptr);
  ASSERT_EQ(evidence.size(), 2u);
  double engaged = 0.0;
  double ignored = 0.0;
  for (const RelevanceEvidence& e : evidence) {
    if (e.shot == 1) engaged = e.weight;
    if (e.shot == 2) ignored = e.weight;
  }
  EXPECT_GT(engaged, 0.0);
  EXPECT_LT(ignored, 0.0);
}

TEST(EstimatorTest, MinAbsWeightFiltersWeakEvidence) {
  const LinearWeighting scheme;
  ImplicitRelevanceEstimator::Options options;
  options.min_abs_weight = 100.0;  // absurdly high threshold
  const ImplicitRelevanceEstimator estimator(scheme, options);
  EXPECT_TRUE(estimator.Estimate(EngagedAndIgnored(), nullptr).empty());
}

TEST(EstimatorTest, OstensiveDecayDiscountsOldEvidence) {
  const BinaryWeighting scheme;  // both shots get identical raw score 1
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kClickKeyframe, 1),
      MakeEvent(10 * kMillisPerMinute, EventType::kClickKeyframe, 2),
  };
  ImplicitRelevanceEstimator::Options options;
  options.use_ostensive = true;
  options.ostensive_half_life_ms = kMillisPerMinute;
  const ImplicitRelevanceEstimator estimator(scheme, options);
  const auto evidence = estimator.Estimate(events, nullptr);
  ASSERT_EQ(evidence.size(), 2u);
  double old_weight = 0.0;
  double new_weight = 0.0;
  for (const RelevanceEvidence& e : evidence) {
    if (e.shot == 1) old_weight = e.weight;
    if (e.shot == 2) new_weight = e.weight;
  }
  EXPECT_DOUBLE_EQ(new_weight, 1.0);
  EXPECT_NEAR(old_weight, std::pow(0.5, 10.0), 1e-9);
  EXPECT_LT(old_weight, new_weight);
}

TEST(EstimatorTest, WithoutOstensiveAgeIrrelevant) {
  const BinaryWeighting scheme;
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kClickKeyframe, 1),
      MakeEvent(10 * kMillisPerMinute, EventType::kClickKeyframe, 2),
  };
  const ImplicitRelevanceEstimator estimator(scheme);
  const auto evidence = estimator.Estimate(events, nullptr);
  ASSERT_EQ(evidence.size(), 2u);
  EXPECT_DOUBLE_EQ(evidence[0].weight, evidence[1].weight);
}

TEST(EstimatorTest, EmptyEventsYieldNoEvidence) {
  const LinearWeighting scheme;
  const ImplicitRelevanceEstimator estimator(scheme);
  EXPECT_TRUE(estimator.Estimate({}, nullptr).empty());
}

TEST(EstimatorTest, EvidenceOrderedByShotId) {
  const LinearWeighting scheme;
  const ImplicitRelevanceEstimator estimator(scheme);
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kClickKeyframe, 9),
      MakeEvent(1, EventType::kClickKeyframe, 3),
      MakeEvent(2, EventType::kClickKeyframe, 5),
  };
  const auto evidence = estimator.Estimate(events, nullptr);
  ASSERT_EQ(evidence.size(), 3u);
  EXPECT_EQ(evidence[0].shot, 3u);
  EXPECT_EQ(evidence[1].shot, 5u);
  EXPECT_EQ(evidence[2].shot, 9u);
}

}  // namespace
}  // namespace ivr
