// The semantic gap, in one program: the same information need answered by
// (a) ASR-transcript text search, (b) low-level visual-example search,
// (c) simulated high-level concept detectors at two quality levels, and
// (d) everything fused — the paper's Section 1 landscape of "approaches
// that turned out to be not efficient enough", measured.
//
//   ./build/examples/semantic_gap

#include <cstdio>

#include "ivr/eval/metrics.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

using namespace ivr;  // examples only

namespace {

double MapOver(const RetrievalEngine& engine, const GeneratedCollection& g,
               bool text, bool visual, bool concepts) {
  double map = 0.0;
  for (const SearchTopic& topic : g.topics.topics) {
    Query query;
    if (text) query.text = topic.title;
    if (visual) query.examples = topic.examples;
    if (concepts) query.concepts = {topic.target_topic};
    map += AveragePrecision(engine.Search(query, 1000), g.qrels, topic.id);
  }
  return map / static_cast<double>(g.topics.size());
}

}  // namespace

int main() {
  GeneratorOptions options;
  options.seed = 2008;
  options.num_topics = 8;
  options.num_videos = 15;
  options.asr_word_error_rate = 0.3;       // 2008-era speech recognition
  options.topic_title_word_offset = 6;     // narrow TRECVID-style topics
  options.keyframe_topic_strength = 0.12;  // weak low-level features
  options.keyframe_noise = 0.5;
  GeneratedCollection g = GenerateCollection(options).value();

  EngineOptions weak;
  weak.use_concepts = true;
  weak.detector.mean_positive = 0.58;  // what 2008 detectors delivered
  weak.detector.noise_stddev = 0.3;
  auto weak_engine = RetrievalEngine::Build(g.collection, weak).value();

  EngineOptions strong = weak;
  strong.detector.mean_positive = 0.9;  // a hypothetical oracle bank
  auto strong_engine =
      RetrievalEngine::Build(g.collection, strong).value();

  std::printf("mean average precision over %zu topics "
              "(%zu shots, WER %.0f%%):\n\n",
              g.topics.size(), g.collection.num_shots(),
              options.asr_word_error_rate * 100);
  std::printf("  %-38s %.4f\n", "ASR transcript text search",
              MapOver(*weak_engine, g, true, false, false));
  std::printf("  %-38s %.4f\n", "visual example search (low-level)",
              MapOver(*weak_engine, g, false, true, false));
  std::printf("  %-38s %.4f\n", "concept detectors, 2008 quality",
              MapOver(*weak_engine, g, false, false, true));
  std::printf("  %-38s %.4f\n", "concept detectors, oracle quality",
              MapOver(*strong_engine, g, false, false, true));
  std::printf("  %-38s %.4f\n", "text + visual + weak concepts fused",
              MapOver(*weak_engine, g, true, true, true));
  std::printf("  %-38s %.4f   <- the gap adaptation targets\n",
              "perfect retrieval", 1.0);
  std::printf(
      "\nno single 2008-era evidence stream closes the gap; fusion helps\n"
      "but the remaining headroom is what implicit-feedback adaptation\n"
      "(AdaptiveEngine) goes after — see bench_e4_adaptive.\n");
  return 0;
}
