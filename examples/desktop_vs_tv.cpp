// One information need, two living rooms: the same search backend behind
// the desktop interface (keyboard + mouse) and the iTV interface (remote
// control). Drives both by hand through the public interface API and
// prints the interaction logs side by side — the environment contrast of
// the paper's Section 3.
//
//   ./build/examples/desktop_vs_tv

#include <cstdio>

#include "ivr/iface/desktop.h"
#include "ivr/iface/tv.h"
#include "ivr/video/generator.h"

using namespace ivr;  // examples only

namespace {

// A scripted mini-session: query, inspect the first page, open and watch
// the second result, judge it, page on. Actions an interface cannot
// perform are skipped — exactly what its users would (not) do.
void RunScriptedSession(SearchInterface* iface, const std::string& query) {
  const InterfaceCapabilities caps = iface->capabilities();
  if (!iface->SubmitQuery(query).ok()) return;
  const std::vector<ShotId> visible = iface->VisibleShots();
  if (visible.empty()) return;

  if (caps.tooltip) {
    (void)iface->HoverTooltip(visible[0], 1200);
  }
  const ShotId chosen = visible.size() > 1 ? visible[1] : visible[0];
  (void)iface->ClickKeyframe(chosen);
  (void)iface->Play(0.8);
  if (caps.seek) {
    (void)iface->Seek(2500);
  }
  if (caps.metadata_highlight) {
    (void)iface->HighlightMetadata(chosen);
  }
  if (caps.explicit_judgment) {
    (void)iface->MarkRelevance(chosen, true);
  }
  (void)iface->NextPage();
  (void)iface->EndSession();
}

void PrintLog(const char* title, const SessionLog& log) {
  std::printf("%s\n", title);
  for (const InteractionEvent& ev : log.events()) {
    std::printf("  %9s  %-18s", FormatDuration(ev.time).c_str() + 2,
                std::string(EventTypeName(ev.type)).c_str());
    if (ev.shot != kInvalidShotId) {
      std::printf("  shot %u", ev.shot);
    }
    if (!ev.text.empty()) {
      std::printf("  \"%s\"", ev.text.c_str());
    }
    if (ev.type == EventType::kPlayStop) {
      std::printf("  (%.1fs played)", ev.value / 1000.0);
    }
    std::printf("\n");
  }
  std::printf("  -> %zu events, session wall time %s\n\n", log.size(),
              log.empty() ? "0"
                          : FormatDuration(log.events().back().time)
                                .c_str());
}

}  // namespace

int main() {
  GeneratorOptions options;
  options.seed = 11;
  options.num_topics = 6;
  options.num_videos = 10;
  GeneratedCollection g = GenerateCollection(options).value();
  auto engine = RetrievalEngine::Build(g.collection).value();
  StaticBackend backend(*engine);
  const std::string query = g.topics.topics[2].title;
  std::printf("information need: \"%s\"\n\n", query.c_str());

  {
    SimulatedClock clock;
    SessionLog log;
    SearchInterface::Config config{"pc-session", "dana", 3};
    DesktopInterface desktop(&backend, g.collection, config, &log, &clock);
    RunScriptedSession(&desktop, query);
    PrintLog("DESKTOP (keyboard + mouse, 10 results/page):", log);
  }
  {
    SimulatedClock clock;
    SessionLog log;
    SearchInterface::Config config{"tv-session", "dana", 3};
    TvInterface tv(&backend, g.collection, config, &log, &clock);
    RunScriptedSession(&tv, query);
    PrintLog("iTV (remote control, 4 results/page):", log);
  }
  std::printf(
      "same script, same backend: the desktop leaves a rich implicit\n"
      "trail (tooltip, metadata) while the TV session costs more wall\n"
      "time for text entry but captures an explicit judgement with one\n"
      "cheap coloured-key press.\n");
  return 0;
}
