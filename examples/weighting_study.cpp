// Mini weighting study: how much retrieval improvement does each
// interpretation of the same interaction log buy? A compact version of
// experiment E3 (see bench/bench_e3_weighting.cc for the full sweep),
// showing the public API for plugging weighting schemes into the
// adaptive engine — including a scheme learned from logs.
//
//   ./build/examples/weighting_study

#include <cstdio>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/eval/metrics.h"
#include "ivr/feedback/indicators.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

using namespace ivr;  // examples only

int main() {
  GeneratorOptions options;
  options.seed = 37;
  options.num_topics = 8;
  options.num_videos = 15;
  options.topic_title_word_offset = 5;
  options.asr_word_error_rate = 0.35;
  GeneratedCollection g = GenerateCollection(options).value();
  auto engine = RetrievalEngine::Build(g.collection).value();
  StaticBackend backend(*engine);
  SessionSimulator simulator(g.collection, g.qrels);

  // One recorded session per topic.
  SessionLog log;
  for (const SearchTopic& topic : g.topics.topics) {
    SessionSimulator::RunConfig config;
    config.seed = 1000 + topic.id;
    config.session_id = "t" + std::to_string(topic.id);
    simulator.Run(&backend, topic, NoviceUser(), config, &log).value();
  }

  // Train the learned scheme on the first half of the topics.
  std::vector<LabeledIndicators> train;
  for (const SearchTopic& topic : g.topics.topics) {
    if (topic.id > g.topics.size() / 2) continue;
    const auto events =
        log.EventsForSession("t" + std::to_string(topic.id));
    for (const auto& [shot, ind] :
         AggregateIndicators(events, &g.collection)) {
      train.push_back(
          LabeledIndicators{ind, g.qrels.IsRelevant(topic.id, shot)});
    }
  }
  LearnedWeighting learned;
  learned.Train(train);
  std::printf("learned weights over %zu examples:\n", train.size());
  for (size_t f = 0; f < kNumIndicatorFeatures; ++f) {
    std::printf("  %-15s %+7.3f\n", IndicatorFeatureNames()[f].c_str(),
                learned.weights()[f]);
  }
  std::printf("\n");

  const BinaryWeighting binary;
  const LinearWeighting linear;
  struct Entry {
    const char* label;
    const WeightingScheme* scheme;
  };
  const Entry entries[] = {{"no feedback", nullptr},
                           {"binary", &binary},
                           {"linear", &linear},
                           {"learned", &learned}};

  std::printf("%-12s  %s\n", "scheme", "MAP over held-out topics");
  for (const Entry& entry : entries) {
    double map = 0.0;
    size_t topics = 0;
    for (const SearchTopic& topic : g.topics.topics) {
      if (topic.id <= g.topics.size() / 2) continue;  // held out
      Query query;
      query.text = topic.title;
      ResultList results;
      if (entry.scheme == nullptr) {
        results = engine->Search(query, 1000);
      } else {
        AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
        adaptive.SetWeightingScheme(entry.scheme);
        adaptive.BeginSession();
        for (const InteractionEvent& ev : log.EventsForSession(
                 "t" + std::to_string(topic.id))) {
          adaptive.ObserveEvent(ev);
        }
        results = adaptive.Search(query, 1000);
      }
      map += AveragePrecision(results, g.qrels, topic.id);
      ++topics;
    }
    std::printf("%-12s  %.4f\n", entry.label,
                topics > 0 ? map / static_cast<double>(topics) : 0.0);
  }
  return 0;
}
