// Quickstart: generate a synthetic news-video collection, index it, run a
// query, give implicit feedback, and watch the ranking adapt.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/eval/metrics.h"
#include "ivr/video/generator.h"

using namespace ivr;  // examples only; library code never does this

int main() {
  // 1. A test collection: broadcasts -> stories -> shots, with ASR
  //    transcripts, keyframes, search topics and relevance judgements.
  GeneratorOptions options;
  options.seed = 7;
  options.num_topics = 6;
  options.num_videos = 12;
  options.asr_word_error_rate = 0.3;
  options.topic_title_word_offset = 5;  // narrow, TRECVID-style topics
  Result<GeneratedCollection> generated = GenerateCollection(options);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  GeneratedCollection g = std::move(generated).value();
  std::printf("collection: %zu broadcasts, %zu stories, %zu shots, "
              "%zu search topics\n\n",
              g.collection.num_videos(), g.collection.num_stories(),
              g.collection.num_shots(), g.topics.size());

  // 2. Index it.
  auto engine = RetrievalEngine::Build(g.collection).value();

  // 3. Search like a user would.
  const SearchTopic& topic = g.topics.topics[0];
  Query query;
  query.text = topic.title;
  std::printf("query: \"%s\"  (subject: %s)\n", topic.title.c_str(),
              g.collection.TopicName(topic.target_topic).c_str());
  const ResultList results = engine->Search(query, 1000);
  for (size_t i = 0; i < 5 && i < results.size(); ++i) {
    const Shot* shot = g.collection.shot(results.at(i).shot).value();
    const NewsStory* story = g.collection.story(shot->story).value();
    std::printf("  %zu. [%s] %-22s (%s, score %.3f)\n", i + 1,
                g.qrels.IsRelevant(topic.id, shot->id) ? "REL" : "   ",
                shot->external_id.c_str(), story->headline.c_str(),
                results.at(i).score);
  }
  std::printf("AP before feedback: %.4f\n\n",
              AveragePrecision(results, g.qrels, topic.id));

  // 4. The user clicks and watches three relevant shots — implicit
  //    relevance feedback the adaptive engine turns into query expansion.
  AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
  adaptive.BeginSession();
  TimeMs t = 0;
  for (ShotId shot : g.qrels.RelevantShots(topic.id, 2)) {
    InteractionEvent click{t, "demo", "alice", topic.id,
                           EventType::kClickKeyframe, shot, 0.0, ""};
    adaptive.ObserveEvent(click);
    InteractionEvent play{t + 1000, "demo", "alice", topic.id,
                          EventType::kPlayStop, shot, 20000.0, ""};
    adaptive.ObserveEvent(play);
    t += 5000;
    if (t > 10000) break;  // three engagements
  }

  // 5. Search again: same query text, adapted ranking.
  const ResultList adapted = adaptive.Search(query, 1000);
  std::printf("AP after feedback:  %.4f  (engine: %s)\n",
              AveragePrecision(adapted, g.qrels, topic.id),
              adaptive.name().c_str());
  return 0;
}
