// Logfile round trip: simulate a user session, persist its interaction
// log to disk in the TSV format, parse it back, and (a) mine implicit
// relevance evidence from it, (b) replay it against an adaptive backend —
// the "analyse the resulting logfiles" methodology of the paper.
//
//   ./build/examples/session_replay [logfile]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/eval/metrics.h"
#include "ivr/feedback/estimator.h"
#include "ivr/sim/replayer.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

using namespace ivr;  // examples only

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/ivr_session.log";

  GeneratorOptions options;
  options.seed = 23;
  options.num_topics = 6;
  options.num_videos = 10;
  options.topic_title_word_offset = 5;
  GeneratedCollection g = GenerateCollection(options).value();
  auto engine = RetrievalEngine::Build(g.collection).value();

  // 1. Record: a simulated expert works on topic 2 against the plain
  //    engine; every interaction lands in the log.
  StaticBackend backend(*engine);
  SessionSimulator simulator(g.collection, g.qrels);
  SessionLog log;
  SessionSimulator::RunConfig config;
  config.seed = 4;
  config.session_id = "recorded-session";
  config.user_id = "erin";
  const SearchTopic& topic = g.topics.topics[2];
  simulator.Run(&backend, topic, ExpertUser(), config, &log).value();

  // 2. Persist and reload the logfile.
  {
    std::ofstream out(path);
    out << log.Serialize();
  }
  std::stringstream buffer;
  buffer << std::ifstream(path).rdbuf();
  const SessionLog parsed = SessionLog::Parse(buffer.str()).value();
  std::printf("wrote and re-read %s: %zu events, %zu queries\n\n",
              path.c_str(), parsed.size(),
              parsed.CountType(EventType::kQuerySubmit));

  // 3. Mine implicit evidence from the parsed log.
  const LinearWeighting scheme;
  const ImplicitRelevanceEstimator estimator(scheme);
  const auto evidence = estimator.Estimate(
      parsed.EventsForSession("recorded-session"), &g.collection);
  std::printf("implicit relevance evidence (scheme: %s):\n",
              scheme.name().c_str());
  for (const RelevanceEvidence& e : evidence) {
    std::printf("  shot %-5u weight %+6.2f  (%s)\n", e.shot, e.weight,
                g.qrels.IsRelevant(topic.id, e.shot) ? "truly relevant"
                                                     : "not relevant");
  }

  // 4. Replay the log against an adaptive backend: what results would
  //    each logged query have received from the smarter system?
  AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
  const LogReplayer replayer(1000);
  const auto replays = replayer.ReplayAll(parsed, &adaptive).value();
  std::printf("\nreplay against %s:\n", adaptive.name().c_str());
  for (const ReplayedSession& session : replays) {
    for (size_t q = 0; q < session.queries.size(); ++q) {
      std::printf("  query %zu \"%s\": AP %.4f\n", q + 1,
                  session.queries[q].c_str(),
                  AveragePrecision(session.per_query_results[q], g.qrels,
                                   session.topic));
    }
  }
  return 0;
}
