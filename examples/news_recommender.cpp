// The paper's Section 3 scenario: a framework that records and indexes
// daily news broadcasts and "automatically identifies news stories which
// are of interest for the user and recommends them to him".
//
// Two users get tonight's personalised digest: one from her registration
// profile alone, one from his watching history (implicit feedback mined
// from past sessions) — and we show the blend of both.
//
//   ./build/examples/news_recommender

#include <cstdio>

#include "ivr/adaptive/recommender.h"
#include "ivr/feedback/estimator.h"
#include "ivr/feedback/weighting.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

using namespace ivr;  // examples only

namespace {

void PrintDigest(const char* who, const VideoCollection& collection,
                 const std::vector<StoryRecommendation>& recs) {
  std::printf("%s\n", who);
  for (size_t i = 0; i < recs.size(); ++i) {
    const NewsStory* story = collection.story(recs[i].story).value();
    std::printf("  %zu. %-28s [%s]  score %.3f\n", i + 1,
                story->headline.c_str(),
                collection.TopicName(story->topic).c_str(),
                recs[i].score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  GeneratorOptions options;
  options.seed = 99;
  options.num_topics = 8;
  options.num_videos = 14;
  GeneratedCollection g = GenerateCollection(options).value();
  auto engine = RetrievalEngine::Build(g.collection).value();
  const NewsRecommender recommender(g.collection, *engine);
  const int32_t tonight =
      static_cast<int32_t>(g.collection.num_videos()) - 1;
  std::printf("digest for broadcast day %d\n\n", tonight);

  // --- Alice: registered interests, no history yet ---
  UserProfile alice("alice");
  alice.demographics().occupation = "teacher";
  alice.SetInterest(1, 1.0);   // sports fan
  alice.SetInterest(4, 0.5);   // some health interest
  RecommenderOptions tonight_only;
  tonight_only.day = tonight;
  PrintDigest("Alice (profile: sports + health):", g.collection,
              recommender.Recommend(alice, {}, 5, tonight_only));

  // --- Bob: blank profile, but we have his interaction logs ---
  // Simulate Bob's past sessions searching finance stories.
  StaticBackend backend(*engine);
  SessionSimulator simulator(g.collection, g.qrels);
  SessionLog bobs_history;
  const SearchTopic* finance_topic = nullptr;
  for (const SearchTopic& topic : g.topics.topics) {
    if (topic.target_topic == 3) finance_topic = &topic;  // finance
  }
  for (uint64_t day = 0; day < 3; ++day) {
    SessionSimulator::RunConfig config;
    config.seed = 500 + day;
    config.session_id = "bob-day" + std::to_string(day);
    config.user_id = "bob";
    simulator.Run(&backend, *finance_topic, NoviceUser(), config,
                  &bobs_history)
        .value();
  }
  // Mine his history into signed relevance evidence.
  const LinearWeighting scheme;
  const ImplicitRelevanceEstimator estimator(scheme);
  std::vector<RelevanceEvidence> history;
  for (const std::string& session : bobs_history.SessionIds()) {
    for (const RelevanceEvidence& e : estimator.Estimate(
             bobs_history.EventsForSession(session), &g.collection)) {
      history.push_back(e);
    }
  }
  std::printf("(mined %zu evidence items from %zu of Bob's sessions)\n\n",
              history.size(), bobs_history.SessionIds().size());

  UserProfile bob("bob");  // nothing declared
  RecommenderOptions history_only = tonight_only;
  history_only.profile_weight = 0.0;
  history_only.implicit_weight = 1.0;
  PrintDigest("Bob (watching history only):", g.collection,
              recommender.Recommend(bob, history, 5, history_only));

  // --- Carol: both signals ---
  UserProfile carol("carol");
  carol.SetInterest(0, 1.0);  // declared politics interest
  PrintDigest("Carol (politics profile + Bob-like finance history):",
              g.collection,
              recommender.Recommend(carol, history, 5, tonight_only));
  return 0;
}
