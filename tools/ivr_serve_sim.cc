// ivr_serve_sim — drive N interleaved user sessions through a shared
// SessionManager from M threads: the concurrent-service workload shape
// (many users, one index) the single-session experiments cannot exercise.
//
//   ivr_serve_sim [--collection c.ivr] [--sessions 16] [--threads 4]
//                 [--env desktop|tv] [--user novice|expert|couch]
//                 [--seed 1] [--shards 8] [--max-sessions N] [--ttl-ms N]
//                 [--persist-dir DIR] [--persist-every N] [--think MS]
//                 [--cache-mb N] [--cache-shards S] [--rankings PATH]
//                 [--check] [--fault-spec SPEC] [--fault-seed N]
//                 [--stats-json PATH] [--trace PATH]
//
// --cache-mb attaches a shared base-ranking cache beneath the session
// manager's engine: concurrent sessions issuing the same base query share
// one computation while adaptive re-ranking stays per-session. Cached
// serving is bit-identical to uncached, so --check passes with any cache
// budget — the sequential reference even reuses entries the concurrent
// run warmed, which is the point.
//
// --stats-json writes the process metrics snapshot (schema-versioned
// JSON, see obs/report.h) at exit; --trace enables span recording and
// writes a JSONL trace. A human-readable metrics summary is always
// printed to stderr at exit.
//
// Without --collection a standard benchmark collection is generated in
// process. --think adds a per-operation user think time (off-CPU), the
// open-loop pacing that lets one core multiplex many concurrent
// sessions. --check re-runs the same workload sequentially on a fresh
// manager and verifies every session's event stream and per-query
// rankings are bit-identical to the concurrent run — the determinism
// contract of the service layer. The contract assumes no eviction, so
// --check rejects --max-sessions/--ttl-ms (victim choice under
// concurrency is interleaving-dependent by design).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/obs/report.h"
#include "ivr/service/managed_backend.h"
#include "ivr/service/session_manager.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

struct Workload {
  Environment env = Environment::kDesktop;
  UserModel user;
  size_t sessions = 16;
  uint64_t seed_base = 1;
  TimeMs think_ms = 0;
};

/// A canonical signature of everything a session's user saw: the full
/// event stream plus every per-query ranking (shot ids and score bits).
/// Two sessions with equal signatures were served identically.
std::string SessionSignature(const SimulatedSession& session) {
  std::string sig;
  for (const InteractionEvent& event : session.events) {
    sig += SessionLog::EventToLine(event);
    sig += "\n";
  }
  for (const ResultList& results : session.outcome.per_query_results) {
    for (const RankedShot& entry : results.items()) {
      sig += StrFormat("%u:%.17g ", entry.shot, entry.score);
    }
    sig += "\n";
  }
  return sig;
}

/// Runs the whole workload against `manager` on `threads` threads and
/// returns the sessions in job order. Each session is driven end to end
/// by exactly one thread through its own ManagedSessionBackend; threads
/// pick jobs from a shared queue, so sessions interleave freely.
std::vector<SimulatedSession> RunWorkload(SessionManager* manager,
                                          const GeneratedCollection& g,
                                          const Workload& w,
                                          size_t threads) {
  const SessionSimulator simulator(g.collection, g.qrels);
  const std::vector<SearchTopic>& topics = g.topics.topics;
  std::vector<SimulatedSession> sessions(w.sessions);
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t j = next++; j < w.sessions; j = next++) {
      const SearchTopic& topic = topics[j % topics.size()];
      SessionSimulator::RunConfig config;
      config.environment = w.env;
      config.seed = w.seed_base + j * 131;
      config.session_id = StrFormat("serve-s%zu", j);
      config.user_id = w.user.name + std::to_string(j % 4);
      ManagedSessionBackend backend(manager, config.session_id,
                                    config.user_id, w.think_ms);
      Result<SimulatedSession> session =
          simulator.Run(&backend, topic, w.user, config, nullptr);
      (void)backend.EndSession();
      if (session.ok()) {
        sessions[j] = std::move(session).value();
      } else {
        std::fprintf(stderr, "session %zu failed: %s\n", j,
                     session.status().ToString().c_str());
      }
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return sessions;
}

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"collection", "sessions", "threads", "env", "user", "seed", "shards",
       "max-sessions", "ttl-ms", "persist-dir", "persist-every", "think",
       "cache-mb", "cache-shards", "check", "rankings", "fault-spec",
       "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }

  GeneratedCollection g;
  const std::string collection_path = args->GetString("collection");
  if (collection_path.empty()) {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 25;
    options.num_topics = 10;
    Result<GeneratedCollection> generated = GenerateCollection(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    g = std::move(generated).value();
    std::fprintf(stderr, "note: no --collection; generated %zu shots\n",
                 g.collection.num_shots());
  } else {
    Result<GeneratedCollection> loaded =
        LoadCollectionRobust(collection_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  }

  Workload w;
  const std::string env_name = args->GetString("env", "desktop");
  if (env_name == "tv") {
    w.env = Environment::kTv;
  } else if (env_name != "desktop") {
    std::fprintf(stderr, "unknown --env %s\n", env_name.c_str());
    return 2;
  }
  const std::string user_name = args->GetString("user", "novice");
  if (user_name == "novice") {
    w.user = NoviceUser();
  } else if (user_name == "expert") {
    w.user = ExpertUser();
  } else if (user_name == "couch") {
    w.user = CouchViewerUser();
  } else {
    std::fprintf(stderr, "unknown --user %s\n", user_name.c_str());
    return 2;
  }
  w.sessions =
      static_cast<size_t>(args->GetInt("sessions", 16).value_or(16));
  w.seed_base = static_cast<uint64_t>(args->GetInt("seed", 1).value_or(1));
  w.think_ms = args->GetInt("think", 0).value_or(0);
  const size_t threads =
      static_cast<size_t>(args->GetInt("threads", 4).value_or(4));

  Result<std::unique_ptr<RetrievalEngine>> engine_result =
      RetrievalEngine::Build(g.collection);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "%s\n", engine_result.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_result).value();
  Result<std::shared_ptr<ResultCache>> cache = ResultCacheFromArgs(*args);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 2;
  }
  engine->AttachCache(*cache);
  AdaptiveOptions adaptive_options;
  const AdaptiveEngine adaptive(*engine, adaptive_options, nullptr);

  SessionManagerOptions manager_options;
  manager_options.num_shards =
      static_cast<size_t>(args->GetInt("shards", 8).value_or(8));
  manager_options.max_sessions =
      static_cast<size_t>(args->GetInt("max-sessions", 0).value_or(0));
  manager_options.idle_ttl_ms = args->GetInt("ttl-ms", 0).value_or(0);
  manager_options.persist_dir = args->GetString("persist-dir");
  manager_options.persist_every_events = static_cast<size_t>(
      args->GetInt("persist-every", 0).value_or(0));

  const Result<bool> check = args->GetBool("check");
  if (!check.ok()) {
    std::fprintf(stderr, "%s\n", check.status().ToString().c_str());
    return 2;
  }
  if (*check &&
      (manager_options.max_sessions > 0 || manager_options.idle_ttl_ms > 0)) {
    std::fprintf(stderr,
                 "--check needs an eviction-free manager: with "
                 "--max-sessions/--ttl-ms the choice of eviction victim "
                 "depends on thread interleaving, so the concurrent run is "
                 "not comparable to the sequential reference\n");
    return 2;
  }

  SessionManager manager(adaptive, manager_options);
  const auto started = std::chrono::steady_clock::now();
  const std::vector<SimulatedSession> sessions =
      RunWorkload(&manager, g, w, threads);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  size_t events = 0;
  size_t found = 0;
  for (const SimulatedSession& session : sessions) {
    events += session.events.size();
    found += session.outcome.truly_relevant_found;
  }
  std::printf(
      "served %zu sessions on %zu threads in %.3fs (%.1f sessions/s): "
      "%zu events, %zu relevant shots found\n",
      w.sessions, threads, elapsed, w.sessions / elapsed, events, found);
  std::printf("%s\n", manager.Stats().ToString().c_str());

  int rc = 0;
  const std::string rankings_path = args->GetString("rankings");
  if (!rankings_path.empty()) {
    // Same line format ivr_workload --rankings writes for closed
    // sessions, so the two dumps are byte-comparable with cmp(1).
    std::string out;
    for (size_t j = 0; j < sessions.size(); ++j) {
      const auto& per_query = sessions[j].outcome.per_query_results;
      for (size_t q = 0; q < per_query.size(); ++q) {
        std::string line;
        for (size_t i = 0; i < per_query[q].size(); ++i) {
          if (i > 0) line += " ";
          const RankedShot& entry = per_query[q].at(i);
          line += StrFormat("%u:%.17g", entry.shot, entry.score);
        }
        out += StrFormat("s%zu q%zu %s\n", j, q, line.c_str());
      }
    }
    const Status written = WriteFileAtomic(rankings_path, out);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      rc = 1;
    }
  }
  if (*check) {
    // Replay the identical workload sequentially (no pacing) on a fresh
    // manager; per-session results must match bit for bit. Only valid
    // without eviction pressure (rejected above): which session a
    // capacity/TTL sweep evicts depends on how the threads interleave,
    // so an evicting run is not comparable to a sequential one.
    Workload sequential = w;
    sequential.think_ms = 0;
    SessionManager reference_manager(adaptive, manager_options);
    const std::vector<SimulatedSession> reference =
        RunWorkload(&reference_manager, g, sequential, 1);
    size_t mismatches = 0;
    for (size_t j = 0; j < sessions.size(); ++j) {
      if (SessionSignature(sessions[j]) != SessionSignature(reference[j])) {
        ++mismatches;
        std::fprintf(stderr, "check: session %zu diverged\n", j);
      }
    }
    if (mismatches == 0) {
      std::printf("check: all %zu sessions bit-identical to the "
                  "sequential run\n",
                  sessions.size());
    } else {
      std::fprintf(stderr, "check FAILED: %zu/%zu sessions diverged\n",
                   mismatches, sessions.size());
      rc = 1;
    }
  }

  const HealthReport health = manager.Health();
  if (health.degraded()) {
    std::fprintf(stderr, "%s\n", health.ToString().c_str());
  }
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  std::fprintf(stderr, "%s", obs::StatsSummary().c_str());
  return obs::FinishToolWithObs(*args, rc);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
