// ivr_workload — run a declarative workload file (see src/ivr/workload)
// through the phase orchestrator: closed-loop simulated-user sessions and
// open-loop Poisson arrivals, against an in-process SessionManager or a
// running ivr_httpd, with a per-phase report and optional canary bounds.
//
//   ivr_workload --workload w.json [--collection c.ivr] [--seed N]
//                [--host H] [--port P] [--ingest-dir DIR]
//                [--report out.json] [--bounds bounds.json]
//                [--rankings out.txt] [--check]
//                [--fault-spec SPEC] [--fault-seed N]
//                [--stats-json PATH] [--trace PATH]
//
// --seed / --host / --port override the workload file's values, so one
// canonical file serves many seeds and an ephemeral server port.
// --rankings dumps every ranking ("s<j> q<i> shot:score ..." lines) in
// the exact format ivr_serve_sim --rankings writes — equal files mean
// bit-identical serving. --check re-runs the workload sequentially and
// verifies the concurrent run's sessions and open-loop rankings match bit
// for bit (rejected for specs whose semantics are legitimately
// interleaving-dependent: eviction, ingest writes, fault phases).
// --bounds evaluates the report against a committed bounds file and exits
// non-zero on any violation — the perf-canary contract. The environment
// variable IVR_WORKLOAD_CANARY_DELAY_US injects a per-operation slowdown
// into open-loop ops (inside the measured latency window), which is how
// the canary test proves its bounds can actually trip.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/obs/report.h"
#include "ivr/video/generator.h"
#include "ivr/video/serialization.h"
#include "ivr/workload/orchestrator.h"
#include "ivr/workload/report.h"
#include "ivr/workload/spec.h"

namespace ivr {
namespace workload {
namespace {

/// Loads --collection, or generates the standard benchmark collection
/// (the same one ivr_serve_sim generates) when absent. Called once per
/// run — the --check rerun rebuilds it, which is fine because both paths
/// are deterministic.
Result<GeneratedCollection> LoadOrGenerate(const std::string& path,
                                           bool quiet) {
  if (path.empty()) {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 25;
    options.num_topics = 10;
    IVR_ASSIGN_OR_RETURN(GeneratedCollection g,
                         GenerateCollection(options));
    if (!quiet) {
      std::fprintf(stderr, "note: no --collection; generated %zu shots\n",
                   g.collection.num_shots());
    }
    return g;
  }
  return LoadCollectionRobust(path);
}

void PrintPhase(const PhaseResult& phase) {
  std::printf(
      "phase %-16s %s  ops %llu/%llu  failures %llu  late %llu  "
      "%.3fs  %.1f ops/s  p50<=%lldus p99<=%lldus",
      phase.name.c_str(), std::string(PhaseModeName(phase.mode)).c_str(),
      static_cast<unsigned long long>(phase.ops),
      static_cast<unsigned long long>(phase.planned_ops),
      static_cast<unsigned long long>(phase.failures),
      static_cast<unsigned long long>(phase.late_arrivals),
      phase.duration_s, phase.achieved_rate,
      static_cast<long long>(phase.latency.Quantile(0.50)),
      static_cast<long long>(phase.latency.Quantile(0.99)));
  if (phase.appends > 0 || phase.publishes > 0) {
    std::printf("  appends %llu publishes %llu",
                static_cast<unsigned long long>(phase.appends),
                static_cast<unsigned long long>(phase.publishes));
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"workload", "collection", "seed", "host", "port", "ingest-dir",
       "report", "bounds", "rankings", "check", "fault-spec", "fault-seed",
       "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }

  const std::string workload_path = args->GetString("workload");
  if (workload_path.empty()) {
    std::fprintf(stderr, "--workload is required\n");
    return 2;
  }
  Result<WorkloadSpec> spec = LoadWorkloadFile(workload_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 2;
  }
  if (args->Has("seed")) {
    const Result<int64_t> seed = args->GetInt("seed", 1);
    if (!seed.ok() || *seed < 0) {
      std::fprintf(stderr, "--seed must be a non-negative integer\n");
      return 2;
    }
    spec->seed = static_cast<uint64_t>(*seed);
  }
  if (args->Has("host")) spec->http.host = args->GetString("host");
  if (args->Has("port")) {
    const Result<int64_t> port = args->GetInt("port", 0);
    if (!port.ok() || *port < 1 || *port > 65535) {
      std::fprintf(stderr, "--port must be in [1, 65535]\n");
      return 2;
    }
    spec->http.port = static_cast<int>(*port);
  }

  const Result<bool> check = args->GetBool("check");
  if (!check.ok()) {
    std::fprintf(stderr, "%s\n", check.status().ToString().c_str());
    return 2;
  }
  if (*check) {
    const Status checkable = CheckableSpec(*spec);
    if (!checkable.ok()) {
      std::fprintf(stderr, "%s\n", checkable.ToString().c_str());
      return 2;
    }
  }

  int64_t canary_delay_us = 0;
  if (const char* delay = std::getenv("IVR_WORKLOAD_CANARY_DELAY_US")) {
    canary_delay_us = std::atoll(delay);
    if (canary_delay_us > 0) {
      std::fprintf(stderr,
                   "note: IVR_WORKLOAD_CANARY_DELAY_US=%lld (injected "
                   "open-loop slowdown)\n",
                   static_cast<long long>(canary_delay_us));
    }
  }

  const std::string collection_path = args->GetString("collection");
  const std::string ingest_dir = args->GetString("ingest-dir");

  Result<GeneratedCollection> collection =
      LoadOrGenerate(collection_path, false);
  if (!collection.ok()) {
    std::fprintf(stderr, "%s\n", collection.status().ToString().c_str());
    return 1;
  }

  OrchestratorConfig config;
  config.collection = std::move(collection).value();
  config.ingest_dir = ingest_dir;
  config.canary_delay_us = canary_delay_us;
  Orchestrator orchestrator(*spec, std::move(config));
  Result<RunArtifacts> run = orchestrator.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("workload %s seed %llu target %s\n", spec->name.c_str(),
              static_cast<unsigned long long>(spec->seed),
              std::string(TargetKindName(spec->target)).c_str());
  for (const PhaseResult& phase : run->report.phases) PrintPhase(phase);

  int rc = 0;
  if (*check) {
    Result<GeneratedCollection> reference_collection =
        LoadOrGenerate(collection_path, true);
    if (!reference_collection.ok()) {
      std::fprintf(stderr, "%s\n",
                   reference_collection.status().ToString().c_str());
      return 1;
    }
    OrchestratorConfig reference_config;
    reference_config.collection = std::move(reference_collection).value();
    reference_config.ingest_dir = ingest_dir;
    reference_config.sequential = true;
    Orchestrator reference(*spec, std::move(reference_config));
    Result<RunArtifacts> reference_run = reference.Run();
    if (!reference_run.ok()) {
      std::fprintf(stderr, "%s\n",
                   reference_run.status().ToString().c_str());
      return 1;
    }
    size_t mismatches = 0;
    for (size_t j = 0; j < run->sessions.size(); ++j) {
      if (run->sessions[j].signature !=
          reference_run->sessions[j].signature) {
        ++mismatches;
        std::fprintf(stderr, "check: session %zu diverged\n", j);
      }
    }
    for (size_t p = 0; p < run->open_rankings.size(); ++p) {
      for (size_t i = 0; i < run->open_rankings[p].size(); ++i) {
        if (run->open_rankings[p][i] !=
            reference_run->open_rankings[p][i]) {
          ++mismatches;
          std::fprintf(stderr, "check: open op p%zu/%zu diverged\n", p, i);
        }
      }
    }
    if (mismatches == 0) {
      std::printf("check: concurrent run bit-identical to the sequential "
                  "rerun\n");
    } else {
      std::fprintf(stderr, "check FAILED: %zu artifacts diverged\n",
                   mismatches);
      rc = 1;
    }
  }

  const std::string report_path = args->GetString("report");
  if (!report_path.empty()) {
    const Status written =
        WriteFileAtomic(report_path, run->report.ToJson());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      rc = 1;
    }
  }
  const std::string rankings_path = args->GetString("rankings");
  if (!rankings_path.empty()) {
    const Status written =
        WriteFileAtomic(rankings_path, run->RankingsText());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      rc = 1;
    }
  }

  const std::string bounds_path = args->GetString("bounds");
  if (!bounds_path.empty()) {
    Result<std::string> bounds_text = ReadFileToString(bounds_path);
    if (!bounds_text.ok()) {
      std::fprintf(stderr, "%s\n",
                   bounds_text.status().ToString().c_str());
      return 2;
    }
    Result<std::vector<std::string>> violations =
        CheckBounds(run->report, *bounds_text);
    if (!violations.ok()) {
      std::fprintf(stderr, "%s: %s\n", bounds_path.c_str(),
                   violations.status().ToString().c_str());
      return 2;
    }
    if (violations->empty()) {
      std::printf("bounds: all phases within %s\n", bounds_path.c_str());
    } else {
      for (const std::string& violation : *violations) {
        std::fprintf(stderr, "bounds VIOLATION: %s\n", violation.c_str());
      }
      std::fprintf(stderr, "bounds FAILED: %zu violation(s) against %s\n",
                   violations->size(), bounds_path.c_str());
      rc = 1;
    }
  }

  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  std::fprintf(stderr, "%s", obs::StatsSummary().c_str());
  return obs::FinishToolWithObs(*args, rc);
}

}  // namespace
}  // namespace workload
}  // namespace ivr

int main(int argc, char** argv) {
  return ivr::workload::Main(argc, argv);
}
