// ivr_eval — trec_eval-style evaluation of run files.
//
//   ivr_eval --collection c.ivr --run run.txt [--run2 other.txt]
//   ivr_eval --qrels qrels.txt --run run.txt [--threads N]
//            [--stats-json PATH] [--trace PATH]
//
// Prints per-topic and mean metrics; with --run2 additionally reports the
// paired t-test and Wilcoxon signed-rank comparison on per-topic AP.
// Per-topic metrics fan out over --threads workers (default: hardware
// concurrency); output is identical for every thread count.
// --stats-json writes the process metrics snapshot (schema-versioned
// JSON) at exit; --trace enables span recording and writes a JSONL
// trace. A metrics summary is always printed to stderr at exit.
//
// --cache-mb is accepted for pipeline uniformity but noted as a no-op on
// stderr: evaluation scores already-written run files and builds no
// retrieval engine, so there is nothing to cache. stdout is unchanged.

#include <cstdio>

#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/retry.h"
#include "ivr/core/string_util.h"
#include "ivr/core/thread_pool.h"
#include "ivr/eval/experiment.h"
#include "ivr/eval/significance.h"
#include "ivr/eval/trec_run.h"
#include "ivr/obs/report.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

Result<SystemEvaluation> Evaluate(const std::string& path,
                                  const Qrels& qrels,
                                  const std::vector<SearchTopicId>& topics,
                                  size_t threads) {
  IVR_ASSIGN_OR_RETURN(std::string text, RetryOnIOError([&path] {
                         return ReadFileToString(path);
                       }));
  std::string tag = path;
  IVR_ASSIGN_OR_RETURN(auto runs, RunsFromTrecFormat(text, &tag));
  SystemRun run;
  run.system = tag;
  run.runs = std::move(runs);
  return EvaluateSystem(run, qrels, topics, /*min_grade=*/1, threads);
}

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"run", "run2", "collection", "qrels", "threads", "cache-mb",
       "cache-shards", "fault-spec", "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const std::string run_path = args->GetString("run");
  if (run_path.empty() || (!args->Has("collection") && !args->Has("qrels"))) {
    std::fprintf(stderr,
                 "usage: ivr_eval (--collection FILE | --qrels FILE) "
                 "--run FILE [--run2 FILE] [--threads N] "
                 "[--fault-spec SPEC] [--fault-seed N] "
                 "[--stats-json PATH] [--trace PATH]\n");
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }
  if (args->Has("cache-mb")) {
    // Accepted so one flag set can drive the whole pipeline, but inert
    // here: ivr_eval scores run files, it performs no retrieval.
    std::fprintf(stderr,
                 "note: --cache-mb has no effect in ivr_eval (no "
                 "retrieval engine to cache)\n");
  }
  const int64_t threads_arg =
      args->GetInt("threads",
                   static_cast<int64_t>(ThreadPool::DefaultThreadCount()))
          .value_or(1);
  const size_t threads =
      threads_arg < 1 ? size_t{1} : static_cast<size_t>(threads_arg);

  Qrels qrels;
  if (args->Has("collection")) {
    Result<GeneratedCollection> loaded =
        LoadCollectionRobust(args->GetString("collection"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    qrels = std::move(loaded->qrels);
  } else {
    const std::string qrels_path = args->GetString("qrels");
    Result<std::string> text = RetryOnIOError(
        [&qrels_path] { return ReadFileToString(qrels_path); });
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<Qrels> parsed = Qrels::FromTrecFormat(*text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    qrels = std::move(parsed).value();
  }
  const std::vector<SearchTopicId> topics = qrels.Topics();

  Result<SystemEvaluation> eval = Evaluate(run_path, qrels, topics, threads);
  if (!eval.ok()) {
    std::fprintf(stderr, "%s\n", eval.status().ToString().c_str());
    return 1;
  }

  TextTable table({"topic", "num_rel", "AP", "P@10", "nDCG@10", "bpref",
                   "RR"});
  for (const TopicMetrics& m : eval->per_topic) {
    table.AddRow({StrFormat("%u", m.topic), StrFormat("%zu", m.num_relevant),
                  FormatMetric(m.ap), FormatMetric(m.p10),
                  FormatMetric(m.ndcg10), FormatMetric(m.bpref),
                  FormatMetric(m.rr)});
  }
  table.AddRow({"mean", "", FormatMetric(eval->mean.ap),
                FormatMetric(eval->mean.p10),
                FormatMetric(eval->mean.ndcg10),
                FormatMetric(eval->mean.bpref), FormatMetric(eval->mean.rr)});
  std::printf("run: %s\n%s\n", eval->system.c_str(),
              table.ToString().c_str());

  const std::string run2_path = args->GetString("run2");
  if (!run2_path.empty()) {
    Result<SystemEvaluation> eval2 =
        Evaluate(run2_path, qrels, topics, threads);
    if (!eval2.ok()) {
      std::fprintf(stderr, "%s\n", eval2.status().ToString().c_str());
      return 1;
    }
    std::printf("comparison vs %s (MAP %s vs %s, %s):\n",
                eval2->system.c_str(), FormatMetric(eval->mean.ap).c_str(),
                FormatMetric(eval2->mean.ap).c_str(),
                FormatRelativeChange(eval->mean.ap, eval2->mean.ap).c_str());
    Result<PairedTestResult> ttest =
        PairedTTest(eval->ApVector(), eval2->ApVector());
    if (ttest.ok()) {
      std::printf("  paired t-test:        t=%+.3f  p=%.4f (n=%zu)\n",
                  ttest->statistic, ttest->p_value, ttest->n);
    }
    Result<PairedTestResult> wilcoxon =
        WilcoxonSignedRank(eval->ApVector(), eval2->ApVector());
    if (wilcoxon.ok()) {
      std::printf("  Wilcoxon signed-rank: z=%+.3f  p=%.4f (n=%zu)\n",
                  wilcoxon->statistic, wilcoxon->p_value, wilcoxon->n);
    }
    Result<PairedTestResult> randomization =
        RandomizationTest(eval->ApVector(), eval2->ApVector());
    if (randomization.ok()) {
      std::printf("  randomization test:   |d|=%.4f p=%.4f (n=%zu)\n",
                  randomization->statistic, randomization->p_value,
                  randomization->n);
    }
  }
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  std::fprintf(stderr, "%s", obs::StatsSummary().c_str());
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
