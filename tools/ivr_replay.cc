// ivr_replay — replay recorded interaction logs against a (possibly
// adaptive) backend and write the results each session's final query
// would have received, as a TREC run file. The Vallet et al. [21]
// evaluate-new-systems-on-old-behaviour methodology as a command.
//
//   ivr_replay --collection c.ivr --log sessions.tsv --run out.txt
//              [--backend static|adaptive] [--k 1000]
//              [--cache-mb N] [--cache-shards S]
//              [--fault-spec SPEC] [--fault-seed N]
//              [--stats-json PATH] [--trace PATH]
//
// --cache-mb attaches a base-ranking cache to the engine; the replayed
// run file is bit-identical with or without it.
//
// --stats-json writes the process metrics snapshot (schema-versioned
// JSON) at exit; --trace enables span recording and writes a JSONL trace.
//
// Collection and log loads retry transient IO errors and verify the
// checksummed envelope; the run file is written atomically; degraded
// backends are reported on stderr via their HealthReport.

#include <cstdio>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/retry.h"
#include "ivr/eval/trec_run.h"
#include "ivr/obs/report.h"
#include "ivr/retrieval/fusion.h"
#include "ivr/sim/replayer.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"collection", "log", "run", "backend", "k", "cache-mb",
       "cache-shards", "fault-spec", "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const std::string collection_path = args->GetString("collection");
  const std::string log_path = args->GetString("log");
  const std::string run_path = args->GetString("run");
  if (collection_path.empty() || log_path.empty() || run_path.empty()) {
    std::fprintf(stderr,
                 "usage: ivr_replay --collection FILE --log FILE "
                 "--run FILE [--backend static|adaptive] [--k N] "
                 "[--cache-mb N] [--cache-shards S] "
                 "[--fault-spec SPEC] [--fault-seed N] "
                 "[--stats-json PATH] [--trace PATH]\n");
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }
  Result<GeneratedCollection> loaded =
      LoadCollectionRobust(collection_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Result<SessionLog> log = RetryOnIOError(
      [&log_path] { return SessionLog::Load(log_path); });
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }

  Result<std::unique_ptr<RetrievalEngine>> engine_result =
      RetrievalEngine::Build(loaded->collection);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_result).value();
  Result<std::shared_ptr<ResultCache>> cache = ResultCacheFromArgs(*args);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 2;
  }
  engine->AttachCache(*cache);
  StaticBackend static_backend(*engine);
  AdaptiveEngine adaptive_backend(*engine, AdaptiveOptions(), nullptr);
  const std::string backend_name = args->GetString("backend", "adaptive");
  SearchBackend* backend = backend_name == "static"
                               ? static_cast<SearchBackend*>(&static_backend)
                               : &adaptive_backend;
  const size_t k =
      static_cast<size_t>(args->GetInt("k", 1000).value_or(1000));

  const LogReplayer replayer(k);
  Result<std::vector<ReplayedSession>> replays =
      replayer.ReplayAll(*log, backend);
  if (!replays.ok()) {
    std::fprintf(stderr, "%s\n", replays.status().ToString().c_str());
    return 1;
  }

  // One run per topic: fuse the final-query results of every session on
  // that topic (CombSUM), so multiple recorded users pool their evidence.
  std::map<SearchTopicId, std::vector<ResultList>> per_topic;
  size_t replayed_queries = 0;
  for (const ReplayedSession& session : *replays) {
    if (session.per_query_results.empty()) continue;
    replayed_queries += session.per_query_results.size();
    per_topic[session.topic].push_back(session.per_query_results.back());
  }
  std::map<SearchTopicId, ResultList> runs;
  for (auto& [topic, lists] : per_topic) {
    ResultList fused = lists.size() == 1 ? lists.front() : CombSum(lists);
    fused.Truncate(k);
    runs[topic] = std::move(fused);
  }

  const Status saved = WriteFileAtomic(
      run_path, RunsToTrecFormat(runs, "replay-" + backend->name()));
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("replayed %zu sessions (%zu queries) against %s; "
              "wrote %s (%zu topics)\n",
              replays->size(), replayed_queries, backend->name().c_str(),
              run_path.c_str(), runs.size());
  const HealthReport health = backend->Health();
  if (health.degraded()) {
    std::fprintf(stderr, "%s\n", health.ToString().c_str());
  }
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
