// ivr_httpd — the network front-end: serve the multi-session service
// layer (SessionManager over one shared engine) as a JSON HTTP API, from
// an epoll event loop with a small worker pool.
//
//   ivr_httpd [--collection c.ivr] [--port 0] [--port-file PATH]
//             [--threads 2] [--shards 8] [--max-sessions N] [--ttl-ms N]
//             [--persist-dir DIR] [--persist-every N]
//             [--cache-mb N] [--cache-shards S]
//             [--max-conns 1024] [--idle-timeout-ms N]
//             [--drain-timeout-ms 2000]
//             [--ingest-dir DIR] [--ingest-stream s.ivr]
//             [--ingest-every 5] [--ingest-delay-ms 0] [--merge-after N]
//             [--fault-spec SPEC] [--fault-seed N]
//             [--stats-json PATH] [--trace PATH]
//
// Endpoints: POST /v1/session/open, /v1/search, /v1/feedback,
// /v1/session/close; GET /healthz, /statsz (the live --stats-json v1
// snapshot). See net/service_handler.h for the request/response schemas.
//
//   curl -s -XPOST localhost:8080/v1/session/open -d '{"session_id":"s1"}'
//   curl -s -XPOST localhost:8080/v1/search
//       -d '{"session_id":"s1","query":{"text":"election"},"k":5}'
//
// --port 0 binds an ephemeral port; the chosen port is printed to stdout
// ("listening on 127.0.0.1:PORT") and, with --port-file, written there
// atomically so scripts can wait for it. --threads sizes the handler
// worker pool (the event loop is always one extra thread).
//
// SIGINT/SIGTERM shut down gracefully: the listener closes immediately,
// every request already accepted finishes (handler + full response flush)
// under the --drain-timeout-ms deadline, then the process exits 0 and
// writes --stats-json. stats.requests_abandoned counts any request the
// deadline cut off.
//
// --ingest-dir switches the backend to a generational LiveEngine rooted
// at DIR (segments + MANIFEST journal; replayed on startup with salvage).
// --ingest-stream additionally streams the videos of a second collection
// into the live index on a background thread, publishing a new generation
// every --ingest-every videos (pacing --ingest-delay-ms between appends),
// while queries keep being served — each request pinned to one complete
// generation. --merge-after N compacts segments in the background once N
// accumulate.
//
// Without --collection a standard benchmark collection is generated in
// process (same as ivr_serve_sim).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/live_engine.h"
#include "ivr/net/http_server.h"
#include "ivr/net/service_handler.h"
#include "ivr/obs/report.h"
#include "ivr/service/session_manager.h"
#include "ivr/video/generator.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"collection", "port", "port-file", "threads", "shards",
       "max-sessions", "ttl-ms", "persist-dir", "persist-every", "cache-mb",
       "cache-shards", "max-conns", "idle-timeout-ms", "drain-timeout-ms",
       "ingest-dir", "ingest-stream", "ingest-every", "ingest-delay-ms",
       "merge-after", "fault-spec", "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }

  GeneratedCollection g;
  const std::string collection_path = args->GetString("collection");
  if (collection_path.empty()) {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 25;
    options.num_topics = 10;
    Result<GeneratedCollection> generated = GenerateCollection(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    g = std::move(generated).value();
    std::fprintf(stderr, "note: no --collection; generated %zu shots\n",
                 g.collection.num_shots());
  } else {
    Result<GeneratedCollection> loaded =
        LoadCollectionRobust(collection_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  }

  Result<std::shared_ptr<ResultCache>> cache = ResultCacheFromArgs(*args);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 2;
  }

  const std::string ingest_dir = args->GetString("ingest-dir");
  const std::string ingest_stream = args->GetString("ingest-stream");
  if (!ingest_stream.empty() && ingest_dir.empty()) {
    std::fprintf(stderr, "--ingest-stream requires --ingest-dir\n");
    return 2;
  }

  // Exactly one backend is populated: a static engine stack, or a
  // generational LiveEngine whose current generation the manager resolves
  // per operation.
  std::unique_ptr<RetrievalEngine> engine;
  std::unique_ptr<const AdaptiveEngine> adaptive;
  std::unique_ptr<LiveEngine> live;
  if (ingest_dir.empty()) {
    Result<std::unique_ptr<RetrievalEngine>> engine_result =
        RetrievalEngine::Build(g.collection);
    if (!engine_result.ok()) {
      std::fprintf(stderr, "%s\n",
                   engine_result.status().ToString().c_str());
      return 1;
    }
    engine = std::move(engine_result).value();
    engine->AttachCache(*cache);
    AdaptiveOptions adaptive_options;
    adaptive = std::make_unique<const AdaptiveEngine>(
        *engine, adaptive_options, nullptr);
  } else {
    IngestOptions ingest_options;
    ingest_options.dir = ingest_dir;
    ingest_options.cache = *cache;
    ingest_options.merge_after_segments = static_cast<size_t>(
        args->GetInt("merge-after", 0).value_or(0));
    ingest_options.background_merge =
        ingest_options.merge_after_segments > 0;
    Result<std::unique_ptr<LiveEngine>> live_result =
        LiveEngine::Open(std::move(g), ingest_options);
    if (!live_result.ok()) {
      std::fprintf(stderr, "%s\n", live_result.status().ToString().c_str());
      return 1;
    }
    live = std::move(live_result).value();
    std::fprintf(stderr,
                 "ingest: serving generation %llu from %s (%zu shots)\n",
                 static_cast<unsigned long long>(live->Stats().generation),
                 ingest_dir.c_str(), live->Stats().live_shots);
  }

  SessionManagerOptions manager_options;
  manager_options.num_shards =
      static_cast<size_t>(args->GetInt("shards", 8).value_or(8));
  manager_options.max_sessions =
      static_cast<size_t>(args->GetInt("max-sessions", 0).value_or(0));
  manager_options.idle_ttl_ms = args->GetInt("ttl-ms", 0).value_or(0);
  manager_options.persist_dir = args->GetString("persist-dir");
  manager_options.persist_every_events =
      static_cast<size_t>(args->GetInt("persist-every", 0).value_or(0));
  std::unique_ptr<SessionManager> manager;
  if (live != nullptr) {
    LiveEngine* live_ptr = live.get();
    manager = std::make_unique<SessionManager>(
        [live_ptr] { return live_ptr->Acquire()->adaptive; },
        manager_options);
  } else {
    manager = std::make_unique<SessionManager>(*adaptive, manager_options);
  }
  net::ServiceHandler handler(manager.get());

  net::HttpServerOptions server_options;
  server_options.port =
      static_cast<int>(args->GetInt("port", 0).value_or(0));
  server_options.num_workers =
      static_cast<size_t>(args->GetInt("threads", 2).value_or(2));
  server_options.max_connections =
      static_cast<size_t>(args->GetInt("max-conns", 1024).value_or(1024));
  server_options.idle_timeout_ms =
      args->GetInt("idle-timeout-ms", 0).value_or(0);
  net::HttpServer server(server_options,
                         [&handler](const net::HttpRequest& request) {
                           return handler.Handle(request);
                         });
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  const std::string port_file = args->GetString("port-file");
  if (!port_file.empty()) {
    const Status written =
        WriteFileAtomic(port_file, StrFormat("%d\n", server.port()));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      server.Stop();
      return 1;
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // The streaming thread: append the stream collection's videos one at a
  // time, publishing a new generation every --ingest-every. Queries keep
  // flowing the whole time; each is pinned to one complete generation.
  std::thread ingest_thread;
  if (!ingest_stream.empty()) {
    Result<GeneratedCollection> stream_result =
        LoadCollectionRobust(ingest_stream);
    if (!stream_result.ok()) {
      std::fprintf(stderr, "%s\n",
                   stream_result.status().ToString().c_str());
      server.Stop();
      return 1;
    }
    const size_t publish_every = static_cast<size_t>(
        std::max<int64_t>(1, args->GetInt("ingest-every", 5).value_or(5)));
    const int64_t delay_ms =
        args->GetInt("ingest-delay-ms", 0).value_or(0);
    LiveEngine* live_ptr = live.get();
    ingest_thread = std::thread([live_ptr, publish_every, delay_ms,
                                 stream = std::move(stream_result).value()] {
      size_t since_publish = 0;
      const size_t total = stream.collection.num_videos();
      for (size_t i = 0; i < total && !g_shutdown.load(); ++i) {
        const Status appended = live_ptr->AppendVideoFrom(
            stream.collection, static_cast<VideoId>(i));
        if (!appended.ok()) {
          std::fprintf(stderr, "ingest: append %zu: %s\n", i,
                       appended.ToString().c_str());
          continue;
        }
        if (++since_publish >= publish_every) {
          const Result<uint64_t> published = live_ptr->Publish();
          if (published.ok()) {
            since_publish = 0;
          } else {
            std::fprintf(stderr, "ingest: publish: %s\n",
                         published.status().ToString().c_str());
          }
        }
        if (delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        }
      }
      // Flush the tail (retried: a fault-injected publish keeps the
      // pending delta).
      for (int attempt = 0; attempt < 5; ++attempt) {
        const Result<uint64_t> published = live_ptr->Publish();
        if (published.ok()) break;
        std::fprintf(stderr, "ingest: final publish: %s\n",
                     published.status().ToString().c_str());
      }
      const IngestStats s = live_ptr->Stats();
      std::fprintf(stderr,
                   "ingest: done — generation %llu, %llu shots appended, "
                   "%llu publishes (%llu failed)\n",
                   static_cast<unsigned long long>(s.generation),
                   static_cast<unsigned long long>(s.shots_appended),
                   static_cast<unsigned long long>(s.publishes),
                   static_cast<unsigned long long>(s.publish_failures));
    });
  }

  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const int64_t drain_ms =
      args->GetInt("drain-timeout-ms", 2000).value_or(2000);
  const bool drained = server.Drain(drain_ms);
  if (ingest_thread.joinable()) ingest_thread.join();

  const net::HttpServerStats stats = server.stats();
  if (!drained) {
    std::fprintf(stderr, "drain: deadline expired, %llu abandoned\n",
                 static_cast<unsigned long long>(stats.requests_abandoned));
  }
  std::printf(
      "served %llu requests on %llu connections "
      "(2xx %llu, 4xx %llu, 5xx %llu, parse errors %llu)\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.responses_2xx),
      static_cast<unsigned long long>(stats.responses_4xx),
      static_cast<unsigned long long>(stats.responses_5xx),
      static_cast<unsigned long long>(stats.parse_errors));
  const HealthReport health =
      live != nullptr ? live->Health() : manager->Health();
  if (health.degraded()) {
    std::fprintf(stderr, "%s\n", health.ToString().c_str());
  }
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  std::fprintf(stderr, "%s", obs::StatsSummary().c_str());
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
