// ivr_httpd — the network front-end: serve the multi-session service
// layer (SessionManager over one shared engine) as a JSON HTTP API, from
// an epoll event loop with a small worker pool.
//
//   ivr_httpd [--collection c.ivr] [--port 0] [--port-file PATH]
//             [--threads 2] [--shards 8] [--max-sessions N] [--ttl-ms N]
//             [--persist-dir DIR] [--persist-every N]
//             [--cache-mb N] [--cache-shards S]
//             [--max-conns 1024] [--idle-timeout-ms N]
//             [--fault-spec SPEC] [--fault-seed N]
//             [--stats-json PATH] [--trace PATH]
//
// Endpoints: POST /v1/session/open, /v1/search, /v1/feedback,
// /v1/session/close; GET /healthz, /statsz (the live --stats-json v1
// snapshot). See net/service_handler.h for the request/response schemas.
//
//   curl -s -XPOST localhost:8080/v1/session/open -d '{"session_id":"s1"}'
//   curl -s -XPOST localhost:8080/v1/search
//       -d '{"session_id":"s1","query":{"text":"election"},"k":5}'
//
// --port 0 binds an ephemeral port; the chosen port is printed to stdout
// ("listening on 127.0.0.1:PORT") and, with --port-file, written there
// atomically so scripts can wait for it. --threads sizes the handler
// worker pool (the event loop is always one extra thread). SIGINT/SIGTERM
// shut down cleanly: drain workers, close connections, write --stats-json.
//
// Without --collection a standard benchmark collection is generated in
// process (same as ivr_serve_sim).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/net/http_server.h"
#include "ivr/net/service_handler.h"
#include "ivr/obs/report.h"
#include "ivr/service/session_manager.h"
#include "ivr/video/generator.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"collection", "port", "port-file", "threads", "shards",
       "max-sessions", "ttl-ms", "persist-dir", "persist-every", "cache-mb",
       "cache-shards", "max-conns", "idle-timeout-ms", "fault-spec",
       "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }

  GeneratedCollection g;
  const std::string collection_path = args->GetString("collection");
  if (collection_path.empty()) {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 25;
    options.num_topics = 10;
    Result<GeneratedCollection> generated = GenerateCollection(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    g = std::move(generated).value();
    std::fprintf(stderr, "note: no --collection; generated %zu shots\n",
                 g.collection.num_shots());
  } else {
    Result<GeneratedCollection> loaded =
        LoadCollectionRobust(collection_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  }

  Result<std::unique_ptr<RetrievalEngine>> engine_result =
      RetrievalEngine::Build(g.collection);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "%s\n", engine_result.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_result).value();
  Result<std::shared_ptr<ResultCache>> cache = ResultCacheFromArgs(*args);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 2;
  }
  engine->AttachCache(*cache);
  AdaptiveOptions adaptive_options;
  const AdaptiveEngine adaptive(*engine, adaptive_options, nullptr);

  SessionManagerOptions manager_options;
  manager_options.num_shards =
      static_cast<size_t>(args->GetInt("shards", 8).value_or(8));
  manager_options.max_sessions =
      static_cast<size_t>(args->GetInt("max-sessions", 0).value_or(0));
  manager_options.idle_ttl_ms = args->GetInt("ttl-ms", 0).value_or(0);
  manager_options.persist_dir = args->GetString("persist-dir");
  manager_options.persist_every_events =
      static_cast<size_t>(args->GetInt("persist-every", 0).value_or(0));
  SessionManager manager(adaptive, manager_options);
  net::ServiceHandler handler(&manager);

  net::HttpServerOptions server_options;
  server_options.port =
      static_cast<int>(args->GetInt("port", 0).value_or(0));
  server_options.num_workers =
      static_cast<size_t>(args->GetInt("threads", 2).value_or(2));
  server_options.max_connections =
      static_cast<size_t>(args->GetInt("max-conns", 1024).value_or(1024));
  server_options.idle_timeout_ms =
      args->GetInt("idle-timeout-ms", 0).value_or(0);
  net::HttpServer server(server_options,
                         [&handler](const net::HttpRequest& request) {
                           return handler.Handle(request);
                         });
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  const std::string port_file = args->GetString("port-file");
  if (!port_file.empty()) {
    const Status written =
        WriteFileAtomic(port_file, StrFormat("%d\n", server.port()));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      server.Stop();
      return 1;
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const net::HttpServerStats stats = server.stats();
  std::printf(
      "served %llu requests on %llu connections "
      "(2xx %llu, 4xx %llu, 5xx %llu, parse errors %llu)\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.responses_2xx),
      static_cast<unsigned long long>(stats.responses_4xx),
      static_cast<unsigned long long>(stats.responses_5xx),
      static_cast<unsigned long long>(stats.parse_errors));
  const HealthReport health = manager.Health();
  if (health.degraded()) {
    std::fprintf(stderr, "%s\n", health.ToString().c_str());
  }
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  std::fprintf(stderr, "%s", obs::StatsSummary().c_str());
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
