// ivr_ingest — drive and inspect a generational live index (see
// ingest/live_engine.h).
//
//   ivr_ingest --dir DIR [--base c.ivr] [--source s.ivr]
//              [--publish-every 0] [--merge-after N] [--merge]
//              [--background-merge]
//              [--list] [--check] [--export PATH] [--k 10]
//              [--cache-mb N] [--cache-shards S]
//              [--fault-spec SPEC] [--fault-seed N]
//              [--stats-json PATH] [--trace PATH]
//
// The tool opens DIR (creating it if needed), replays the MANIFEST with
// salvage, then:
//   --source s.ivr    appends every video of s.ivr into the live index,
//                     publishing a generation every --publish-every
//                     videos (0 = one publish at the end);
//   --merge           compacts the published segments into one;
//   --merge-after N   auto-compacts once N segments accumulate;
//   --background-merge  runs auto-compaction on the merge thread
//                     instead of inline on the publisher;
//   --export PATH     saves the served snapshot as a monolithic .ivr;
//   --list            prints the manifest journal record by record;
//   --check           proves the generational composition correct: the
//                     served snapshot is exported, reloaded, and indexed
//                     as one monolithic collection, and every base topic
//                     is searched on both engines — rankings must be
//                     bit-identical (exit 1 on any mismatch).
//
// Without --base a standard benchmark collection is generated in process
// (same parameters as ivr_httpd / ivr_serve_sim).

#include <cstdio>
#include <memory>
#include <string>

#include "ivr/cache/result_cache.h"
#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/live_engine.h"
#include "ivr/ingest/manifest.h"
#include "ivr/obs/report.h"
#include "ivr/video/generator.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

/// Canonical byte rendering of a ranking, for bit-identity comparison.
std::string RenderRanking(const ResultList& list) {
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    const RankedShot& entry = list.at(i);
    out += StrFormat("%u:%.17g ", entry.shot, entry.score);
  }
  return out;
}

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"dir", "base", "source", "publish-every", "merge-after", "merge",
       "background-merge", "list", "check", "export", "k", "cache-mb",
       "cache-shards", "fault-spec", "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }
  const std::string dir = args->GetString("dir");
  if (dir.empty()) {
    std::fprintf(stderr, "--dir is required\n");
    return 2;
  }

  GeneratedCollection base;
  const std::string base_path = args->GetString("base");
  if (base_path.empty()) {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 25;
    options.num_topics = 10;
    Result<GeneratedCollection> generated = GenerateCollection(options);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    base = std::move(generated).value();
  } else {
    Result<GeneratedCollection> loaded = LoadCollectionRobust(base_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    base = std::move(loaded).value();
  }

  Result<std::shared_ptr<ResultCache>> cache = ResultCacheFromArgs(*args);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 2;
  }
  IngestOptions options;
  options.dir = dir;
  options.cache = *cache;
  options.merge_after_segments =
      static_cast<size_t>(args->GetInt("merge-after", 0).value_or(0));
  const Result<bool> background_merge = args->GetBool("background-merge");
  if (!background_merge.ok()) {
    std::fprintf(stderr, "%s\n",
                 background_merge.status().ToString().c_str());
    return 2;
  }
  options.background_merge = *background_merge;
  Result<std::unique_ptr<LiveEngine>> live_result =
      LiveEngine::Open(std::move(base), options);
  if (!live_result.ok()) {
    std::fprintf(stderr, "%s\n", live_result.status().ToString().c_str());
    return 1;
  }
  LiveEngine& live = **live_result;

  const std::string source_path = args->GetString("source");
  if (!source_path.empty()) {
    Result<GeneratedCollection> source = LoadCollectionRobust(source_path);
    if (!source.ok()) {
      std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
      return 1;
    }
    const size_t publish_every = static_cast<size_t>(
        args->GetInt("publish-every", 0).value_or(0));
    size_t since_publish = 0;
    const size_t total = source->collection.num_videos();
    for (size_t i = 0; i < total; ++i) {
      const Status appended =
          live.AppendVideoFrom(source->collection, static_cast<VideoId>(i));
      if (!appended.ok()) {
        std::fprintf(stderr, "append video %zu: %s\n", i,
                     appended.ToString().c_str());
        continue;
      }
      if (publish_every > 0 && ++since_publish >= publish_every) {
        const Result<uint64_t> published = live.Publish();
        if (published.ok()) {
          since_publish = 0;
        } else {
          std::fprintf(stderr, "publish: %s\n",
                       published.status().ToString().c_str());
        }
      }
    }
    const Result<uint64_t> published = live.Publish();
    if (!published.ok()) {
      std::fprintf(stderr, "final publish: %s\n",
                   published.status().ToString().c_str());
      return 1;
    }
  }

  const Result<bool> merge_flag = args->GetBool("merge");
  if (!merge_flag.ok()) {
    std::fprintf(stderr, "%s\n", merge_flag.status().ToString().c_str());
    return 2;
  }
  if (*merge_flag) {
    const Status merged = live.Merge();
    if (!merged.ok()) {
      std::fprintf(stderr, "merge: %s\n", merged.ToString().c_str());
      return 1;
    }
  }

  const Result<bool> list_flag = args->GetBool("list");
  if (!list_flag.ok()) {
    std::fprintf(stderr, "%s\n", list_flag.status().ToString().c_str());
    return 2;
  }
  if (*list_flag) {
    ManifestLog manifest(LiveEngine::ManifestPath(dir));
    Result<ManifestLoadResult> loaded = manifest.Load();
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    for (const ManifestRecord& record : loaded->records) {
      std::string line = StrFormat(
          "generation %llu:", static_cast<unsigned long long>(
                                  record.generation));
      for (const std::string& segment : record.segments) {
        line += " " + segment;
      }
      std::printf("%s\n", line.c_str());
    }
    if (loaded->torn_chunks > 0) {
      std::printf("torn manifest chunks: %zu\n", loaded->torn_chunks);
    }
  }

  const std::shared_ptr<const EngineSnapshot> snapshot = live.Acquire();
  const std::string export_path = args->GetString("export");
  if (!export_path.empty()) {
    const Status saved = SaveCollection(live.ExportCollection(), export_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "export: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("exported generation %llu to %s\n",
                static_cast<unsigned long long>(snapshot->generation),
                export_path.c_str());
  }

  const Result<bool> check_flag = args->GetBool("check");
  if (!check_flag.ok()) {
    std::fprintf(stderr, "%s\n", check_flag.status().ToString().c_str());
    return 2;
  }
  if (*check_flag) {
    // Round-trip the served snapshot through the archive format and index
    // it monolithically: the generational composition (base + replayed
    // segments) must rank every topic bit-identically to the flat build.
    const std::string check_path =
        export_path.empty() ? dir + "/check-export.ivr" : export_path;
    if (export_path.empty()) {
      const Status saved = SaveCollection(live.ExportCollection(), check_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "check export: %s\n", saved.ToString().c_str());
        return 1;
      }
    }
    Result<GeneratedCollection> reloaded = LoadCollection(check_path);
    if (!reloaded.ok()) {
      std::fprintf(stderr, "check reload: %s\n",
                   reloaded.status().ToString().c_str());
      return 1;
    }
    Result<std::unique_ptr<RetrievalEngine>> direct =
        RetrievalEngine::Build(reloaded->collection,
                               live.options().engine);
    if (!direct.ok()) {
      std::fprintf(stderr, "check build: %s\n",
                   direct.status().ToString().c_str());
      return 1;
    }
    const size_t k =
        static_cast<size_t>(args->GetInt("k", 10).value_or(10));
    size_t mismatches = 0;
    for (const SearchTopic& topic : snapshot->topics->topics) {
      Query query;
      query.text = topic.title;
      query.examples = topic.examples;
      const std::string live_ranking =
          RenderRanking(snapshot->engine->Search(query, k));
      const std::string direct_ranking =
          RenderRanking((*direct)->Search(query, k));
      if (live_ranking != direct_ranking) {
        ++mismatches;
        std::fprintf(stderr, "check: topic %u diverged\n  live:   %s\n"
                     "  direct: %s\n",
                     topic.id, live_ranking.c_str(),
                     direct_ranking.c_str());
      }
    }
    if (mismatches > 0) {
      std::fprintf(stderr, "check FAILED: %zu/%zu topics diverged\n",
                   mismatches, snapshot->topics->size());
      return 1;
    }
    std::printf("check ok: %zu topics bit-identical at k=%zu "
                "(generation %llu)\n",
                snapshot->topics->size(), k,
                static_cast<unsigned long long>(snapshot->generation));
  }

  const IngestStats stats = live.Stats();
  std::printf(
      "generation %llu, %zu segments, %zu live shots "
      "(%llu appended, %llu publishes, %llu merges; salvage: %llu orphan, "
      "%llu torn segments, %llu torn manifest chunks)\n",
      static_cast<unsigned long long>(stats.generation), stats.segments,
      stats.live_shots,
      static_cast<unsigned long long>(stats.shots_appended),
      static_cast<unsigned long long>(stats.publishes),
      static_cast<unsigned long long>(stats.merges),
      static_cast<unsigned long long>(stats.orphan_segments_dropped),
      static_cast<unsigned long long>(stats.torn_segments_dropped),
      static_cast<unsigned long long>(stats.torn_manifest_chunks));
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
