// ivr_search — run queries against a saved collection.
//
// Batch mode (default): runs every search topic's title query and writes
// a TREC run file. Topics fan out over --threads workers (default:
// hardware concurrency); the run file is identical for any thread count:
//   ivr_search --collection c.ivr --run run.txt [--scorer bm25] [--k 1000]
//              [--visual] [--tag mytag] [--threads N]
//              [--cache-mb N] [--cache-shards S]
//              [--fault-spec SPEC] [--fault-seed N]
//              [--stats-json PATH] [--trace PATH]
//
// --cache-mb attaches a byte-budgeted base-ranking cache to the engine;
// cached serving is bit-identical to uncached, so the run file does not
// change — only the latency of repeated queries does.
//
// --stats-json writes the process metrics snapshot (schema-versioned
// JSON) at exit; --trace enables span recording and writes a JSONL trace.
//
// Ad-hoc mode: --query "words ..." prints the top results humanly:
//   ivr_search --collection c.ivr --query "ginadebo market" [--k 10]
//
// Collection loads retry transient IO errors and salvage corrupt
// archives; run files are written atomically; a degraded engine is
// reported on stderr via its HealthReport.

#include <cstdio>

#include "ivr/cache/result_cache.h"
#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/thread_pool.h"
#include "ivr/eval/trec_run.h"
#include "ivr/obs/report.h"
#include "ivr/retrieval/engine.h"
#include "ivr/retrieval/story_rank.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"collection", "scorer", "k", "query", "stories", "run", "visual",
       "tag", "threads", "cache-mb", "cache-shards", "fault-spec",
       "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const Result<bool> stories_flag = args->GetBool("stories");
  const Result<bool> visual_flag = args->GetBool("visual");
  if (!stories_flag.ok() || !visual_flag.ok()) {
    const Status& bad =
        stories_flag.ok() ? visual_flag.status() : stories_flag.status();
    std::fprintf(stderr, "%s\n", bad.ToString().c_str());
    return 2;
  }
  const std::string collection_path = args->GetString("collection");
  if (collection_path.empty()) {
    std::fprintf(stderr,
                 "usage: ivr_search --collection FILE "
                 "(--run OUT | --query \"...\") [--scorer bm25] [--k N] "
                 "[--visual] [--tag TAG] [--threads N] "
                 "[--cache-mb N] [--cache-shards S] "
                 "[--fault-spec SPEC] [--fault-seed N] "
                 "[--stats-json PATH] [--trace PATH]\n");
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }
  Result<GeneratedCollection> loaded =
      LoadCollectionRobust(collection_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const GeneratedCollection& g = *loaded;

  EngineOptions options;
  options.scorer = args->GetString("scorer", "bm25");
  Result<std::unique_ptr<RetrievalEngine>> engine =
      RetrievalEngine::Build(g.collection, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const size_t k = static_cast<size_t>(
      args->GetInt("k", 1000).value_or(1000));
  Result<std::shared_ptr<ResultCache>> cache = ResultCacheFromArgs(*args);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 2;
  }
  (*engine)->AttachCache(*cache);

  // Shared exit path: surface degraded-mode counters and chaos totals on
  // stderr so no fault is absorbed silently.
  const auto report_health = [&engine] {
    const HealthReport report = (*engine)->Health();
    if (report.degraded()) {
      std::fprintf(stderr, "%s\n", report.ToString().c_str());
    }
    if (FaultInjector::Global().enabled()) {
      std::fprintf(stderr, "%s",
                   FaultInjector::Global().Summary().c_str());
    }
  };

  const std::string adhoc = args->GetString("query");
  if (!adhoc.empty()) {
    Query query;
    query.text = adhoc;
    const ResultList results = (*engine)->Search(query, k);
    if (*stories_flag) {
      // Story-level presentation: aggregate shot evidence per story.
      const auto stories =
          RankStories(results, g.collection, k, StoryAggregation::kMax);
      std::printf("%zu stories for \"%s\"\n", stories.size(),
                  adhoc.c_str());
      for (size_t i = 0; i < stories.size(); ++i) {
        const NewsStory* story =
            g.collection.story(stories[i].story).value();
        std::printf("%3zu. %-26s [%s]  score %.4f  (%zu matching shots)\n",
                    i + 1, story->headline.c_str(),
                    g.collection.TopicName(story->topic).c_str(),
                    stories[i].score, stories[i].supporting_shots.size());
      }
      report_health();
      return obs::FinishToolWithObs(*args, 0);
    }
    std::printf("%zu results for \"%s\"\n", results.size(), adhoc.c_str());
    for (size_t i = 0; i < std::min<size_t>(k, results.size()); ++i) {
      const Shot* shot = g.collection.shot(results.at(i).shot).value();
      const NewsStory* story = g.collection.story(shot->story).value();
      std::printf("%3zu. %-18s %-10s %-26s %.4f\n", i + 1,
                  shot->external_id.c_str(),
                  g.collection.TopicName(shot->primary_topic).c_str(),
                  story->headline.c_str(), results.at(i).score);
    }
    report_health();
    return obs::FinishToolWithObs(*args, 0);
  }

  const std::string run_path = args->GetString("run");
  if (run_path.empty()) {
    std::fprintf(stderr, "one of --run or --query is required\n");
    return 2;
  }
  const bool visual = *visual_flag;
  const int64_t threads_arg =
      args->GetInt("threads",
                   static_cast<int64_t>(ThreadPool::DefaultThreadCount()))
          .value_or(1);
  const size_t threads =
      threads_arg < 1 ? size_t{1} : static_cast<size_t>(threads_arg);
  std::vector<Query> queries;
  for (const SearchTopic& topic : g.topics.topics) {
    Query query;
    query.text = topic.title;
    if (visual) query.examples = topic.examples;
    queries.push_back(std::move(query));
  }
  const std::vector<ResultList> lists =
      (*engine)->BatchSearch(queries, k, threads);
  std::map<SearchTopicId, ResultList> runs;
  for (size_t i = 0; i < lists.size(); ++i) {
    runs[g.topics.topics[i].id] = lists[i];
  }
  const std::string tag =
      args->GetString("tag", options.scorer + (visual ? "+visual" : ""));
  const Status saved =
      WriteFileAtomic(run_path, RunsToTrecFormat(runs, tag));
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu topics, tag '%s'\n", run_path.c_str(),
              runs.size(), tag.c_str());
  report_health();
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
