// ivr_simulate — run simulated user sessions against a saved collection
// and write the interaction logs (the input to every feedback analysis).
//
//   ivr_simulate --collection c.ivr --log sessions.tsv
//                [--env desktop|tv] [--user novice|expert|couch]
//                [--sessions-per-topic 2] [--seed 1]
//                [--backend static|adaptive]

#include <cstdio>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/args.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const std::string collection_path = args->GetString("collection");
  const std::string log_path = args->GetString("log");
  if (collection_path.empty() || log_path.empty()) {
    std::fprintf(stderr,
                 "usage: ivr_simulate --collection FILE --log FILE "
                 "[--env desktop|tv] [--user novice|expert|couch] "
                 "[--sessions-per-topic N] [--seed N] "
                 "[--backend static|adaptive]\n");
    return 2;
  }
  Result<GeneratedCollection> loaded = LoadCollection(collection_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const GeneratedCollection& g = *loaded;

  const std::string env_name = args->GetString("env", "desktop");
  Environment env;
  if (env_name == "desktop") {
    env = Environment::kDesktop;
  } else if (env_name == "tv") {
    env = Environment::kTv;
  } else {
    std::fprintf(stderr, "unknown --env %s\n", env_name.c_str());
    return 2;
  }

  const std::string user_name = args->GetString("user", "novice");
  UserModel user;
  if (user_name == "novice") {
    user = NoviceUser();
  } else if (user_name == "expert") {
    user = ExpertUser();
  } else if (user_name == "couch") {
    user = CouchViewerUser();
  } else {
    std::fprintf(stderr, "unknown --user %s\n", user_name.c_str());
    return 2;
  }

  auto engine = RetrievalEngine::Build(g.collection).value();
  StaticBackend static_backend(*engine);
  AdaptiveEngine adaptive_backend(*engine, AdaptiveOptions(), nullptr);
  SearchBackend* backend = &static_backend;
  if (args->GetString("backend", "static") == "adaptive") {
    backend = &adaptive_backend;
  }

  const size_t per_topic = static_cast<size_t>(
      args->GetInt("sessions-per-topic", 2).value_or(2));
  const uint64_t seed_base = static_cast<uint64_t>(
      args->GetInt("seed", 1).value_or(1));

  SessionSimulator simulator(g.collection, g.qrels);
  SessionLog log;
  size_t sessions = 0;
  size_t found = 0;
  for (const SearchTopic& topic : g.topics.topics) {
    for (size_t s = 0; s < per_topic; ++s) {
      SessionSimulator::RunConfig config;
      config.environment = env;
      config.seed = seed_base + topic.id * 1000 + s;
      config.session_id = StrFormat("%s-t%u-s%zu", env_name.c_str(),
                                    topic.id, s);
      config.user_id = user.name;
      Result<SimulatedSession> session =
          simulator.Run(backend, topic, user, config, &log);
      if (!session.ok()) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      ++sessions;
      found += session->outcome.truly_relevant_found;
    }
  }
  const Status saved = WriteStringToFile(log_path, log.Serialize());
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu sessions (%s, %s, %s backend), %zu events, "
              "%zu relevant shots found\n",
              log_path.c_str(), sessions, env_name.c_str(),
              user.name.c_str(), backend == &static_backend ? "static"
                                                            : "adaptive",
              log.size(), found);
  return 0;
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
