// ivr_simulate — run simulated user sessions against a saved collection
// and write the interaction logs (the input to every feedback analysis).
//
//   ivr_simulate --collection c.ivr --log sessions.tsv
//                [--env desktop|tv] [--user novice|expert|couch]
//                [--sessions-per-topic 2] [--seed 1]
//                [--backend static|adaptive] [--profiles store.ivrp]
//                [--threads N] [--cache-mb N] [--cache-shards S]
//                [--fault-spec SPEC] [--fault-seed N]
//                [--stats-json PATH] [--trace PATH]
//
// --cache-mb attaches a shared base-ranking cache to the engine every
// worker searches through, so sessions that issue the same base query
// share one computation; adaptive re-ranking still runs per session and
// the log stays bit-identical to an uncached run.
//
// --stats-json writes the process metrics snapshot (schema-versioned
// JSON) at exit; --trace enables span recording and writes a JSONL trace.
//
// Sessions fan out over --threads workers (default: hardware
// concurrency). Each worker owns its backend — the adaptive backend's
// session state lives in a per-engine SessionContext, so sessions never
// interleave feedback across workers. The log and summary are identical
// for every thread count.
//
// --profiles points the adaptive backend at a persisted ProfileStore; if
// the store fails to load the tool degrades to non-personalised sessions
// (reported via the HealthReport on stderr) instead of failing. The log
// is written atomically inside a checksummed envelope.

#include <cstdio>
#include <memory>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/retry.h"
#include "ivr/core/string_util.h"
#include "ivr/core/thread_pool.h"
#include "ivr/obs/report.h"
#include "ivr/profile/profile_store.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"collection", "log", "env", "user", "backend", "profiles",
       "sessions-per-topic", "seed", "threads", "cache-mb", "cache-shards",
       "fault-spec", "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const std::string collection_path = args->GetString("collection");
  const std::string log_path = args->GetString("log");
  if (collection_path.empty() || log_path.empty()) {
    std::fprintf(stderr,
                 "usage: ivr_simulate --collection FILE --log FILE "
                 "[--env desktop|tv] [--user novice|expert|couch] "
                 "[--sessions-per-topic N] [--seed N] "
                 "[--backend static|adaptive] [--profiles FILE] "
                 "[--threads N] [--cache-mb N] [--cache-shards S] "
                 "[--fault-spec SPEC] [--fault-seed N] "
                 "[--stats-json PATH] [--trace PATH]\n");
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }
  Result<GeneratedCollection> loaded =
      LoadCollectionRobust(collection_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const GeneratedCollection& g = *loaded;

  const std::string env_name = args->GetString("env", "desktop");
  Environment env;
  if (env_name == "desktop") {
    env = Environment::kDesktop;
  } else if (env_name == "tv") {
    env = Environment::kTv;
  } else {
    std::fprintf(stderr, "unknown --env %s\n", env_name.c_str());
    return 2;
  }

  const std::string user_name = args->GetString("user", "novice");
  UserModel user;
  if (user_name == "novice") {
    user = NoviceUser();
  } else if (user_name == "expert") {
    user = ExpertUser();
  } else if (user_name == "couch") {
    user = CouchViewerUser();
  } else {
    std::fprintf(stderr, "unknown --user %s\n", user_name.c_str());
    return 2;
  }

  Result<std::unique_ptr<RetrievalEngine>> engine_result =
      RetrievalEngine::Build(g.collection);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_result).value();
  Result<std::shared_ptr<ResultCache>> cache = ResultCacheFromArgs(*args);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 2;
  }
  engine->AttachCache(*cache);
  const bool adaptive = args->GetString("backend", "static") == "adaptive";

  // Optional persisted profiles for the adaptive backend. An unreadable
  // store degrades to non-personalised sessions instead of failing: the
  // paper's accumulated-profile state must never block retrieval itself.
  ProfileStore profiles;
  bool profiles_degraded = false;
  const UserProfile* profile = nullptr;
  const std::string profiles_path = args->GetString("profiles");
  if (!profiles_path.empty()) {
    Result<ProfileStore> store = RetryOnIOError(
        [&profiles_path] { return ProfileStore::Load(profiles_path); });
    if (store.ok()) {
      profiles = std::move(store).value();
      profile = profiles.GetOrCreate(user.name);
    } else {
      std::fprintf(stderr,
                   "profile store unavailable (%s); continuing "
                   "non-personalised\n",
                   store.status().ToString().c_str());
      profiles_degraded = true;
    }
  }

  const int64_t threads_arg =
      args->GetInt("threads",
                   static_cast<int64_t>(ThreadPool::DefaultThreadCount()))
          .value_or(1);
  const size_t threads =
      threads_arg < 1 ? size_t{1} : static_cast<size_t>(threads_arg);

  const size_t per_topic = static_cast<size_t>(
      args->GetInt("sessions-per-topic", 2).value_or(2));
  const uint64_t seed_base = static_cast<uint64_t>(
      args->GetInt("seed", 1).value_or(1));

  SessionSimulator simulator(g.collection, g.qrels);
  std::vector<SessionSimulator::SweepJob> jobs;
  for (const SearchTopic& topic : g.topics.topics) {
    for (size_t s = 0; s < per_topic; ++s) {
      SessionSimulator::SweepJob job;
      job.topic = &topic;
      job.user = &user;
      job.config.environment = env;
      job.config.seed = seed_base + topic.id * 1000 + s;
      job.config.session_id = StrFormat("%s-t%u-s%zu", env_name.c_str(),
                                        topic.id, s);
      job.config.user_id = user.name;
      jobs.push_back(std::move(job));
    }
  }

  // One backend per worker: StaticBackend is stateless over the shared
  // engine, and each AdaptiveEngine binds its own session context, so a
  // worker's sessions never see another worker's feedback state.
  std::vector<StaticBackend> static_backends(threads,
                                             StaticBackend(*engine));
  AdaptiveOptions adaptive_options;
  adaptive_options.use_profile = profile != nullptr;
  std::vector<std::unique_ptr<AdaptiveEngine>> adaptive_backends;
  for (size_t t = 0; t < threads; ++t) {
    adaptive_backends.push_back(std::make_unique<AdaptiveEngine>(
        *engine, adaptive_options, profile));
  }
  const auto backend_for_worker = [&](size_t worker) -> SearchBackend* {
    if (adaptive) return adaptive_backends[worker % threads].get();
    return &static_backends[worker % threads];
  };

  SessionLog log;
  Result<std::vector<SimulatedSession>> sweep =
      simulator.RunSweep(jobs, backend_for_worker, threads, &log);
  if (!sweep.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  const size_t sessions = sweep->size();
  size_t found = 0;
  for (const SimulatedSession& session : *sweep) {
    found += session.outcome.truly_relevant_found;
  }
  const Status saved = log.Save(log_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu sessions (%s, %s, %s backend, %zu threads), "
              "%zu events, %zu relevant shots found\n",
              log_path.c_str(), sessions, env_name.c_str(),
              user.name.c_str(), adaptive ? "adaptive" : "static", threads,
              log.size(), found);
  // Aggregate health across the per-worker backends so a degradation on
  // any worker is reported, not just worker 0's.
  HealthReport health =
      adaptive ? adaptive_backends[0]->Health() : static_backends[0].Health();
  if (adaptive) {
    for (size_t t = 1; t < threads; ++t) {
      const HealthReport h = adaptive_backends[t]->Health();
      health.concept_index_available &= h.concept_index_available;
      health.profile_available &= h.profile_available;
      health.feedback_skipped += h.feedback_skipped;
      health.profile_reranks_skipped += h.profile_reranks_skipped;
    }
  }
  if (profiles_degraded) health.profile_available = false;
  if (health.degraded()) {
    std::fprintf(stderr, "%s\n", health.ToString().c_str());
  }
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
