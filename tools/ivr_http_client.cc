// ivr_http_client — concurrent load driver for ivr_httpd: open sessions,
// search, send feedback, close, from many threads over keep-alive
// connections, and report throughput plus per-status counts.
//
//   ivr_http_client --port P [--host 127.0.0.1] [--sessions 8]
//                   [--threads 4] [--queries 4] [--k 10] [--seed 1]
//                   [--prefix http] [--query-file PATH] [--out PATH]
//                   [--statsz-out PATH] [--stats-json PATH] [--trace PATH]
//
// Each session j (id "<prefix>-s<j>") is driven end to end by one thread:
// open, `--queries` searches (deterministic query texts from the seed, a
// click_keyframe feedback on each top hit), close. --query-file supplies
// the query pool (one query per line) — generated collections use a
// synthetic vocabulary, so hitting queries must come from the collection
// (the built-in English pool only exercises the no-match path). --out writes one line
// per search — "session query shot:score ..." with the score text exactly
// as it appeared on the wire — so runs can be diffed byte for byte.
// --statsz-out fetches GET /statsz after the workload and writes the body
// (the server's live --stats-json v1 snapshot) to a file.
//
// Exits 1 if any request failed or returned an unexpected status.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ivr/core/args.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/net/http_client.h"
#include "ivr/net/json.h"
#include "ivr/obs/report.h"

namespace ivr {
namespace {

/// Deterministic query text for (seed, session, query), drawn from `pool`
/// when --query-file supplied one, else from a built-in English pool.
std::string QueryText(const std::vector<std::string>& pool, uint64_t seed,
                      size_t session, size_t query) {
  static const char* const kTerms[] = {
      "election", "storm",  "football", "concert", "space",
      "market",   "flood",  "protest",  "film",    "health",
  };
  constexpr size_t kNumTerms = sizeof(kTerms) / sizeof(kTerms[0]);
  const uint64_t mix = seed * 1000003 + session * 131 + query * 7;
  if (!pool.empty()) return pool[mix % pool.size()];
  return StrFormat("%s %s", kTerms[mix % kNumTerms],
                   kTerms[(mix / kNumTerms) % kNumTerms]);
}

struct DriverTotals {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> results_seen{0};
};

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"host", "port", "sessions", "threads", "queries", "k", "seed",
       "prefix", "query-file", "out", "statsz-out", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }
  const int port = static_cast<int>(args->GetInt("port", 0).value_or(0));
  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }
  const std::string host = args->GetString("host", "127.0.0.1");
  const size_t sessions =
      static_cast<size_t>(args->GetInt("sessions", 8).value_or(8));
  const size_t threads =
      static_cast<size_t>(args->GetInt("threads", 4).value_or(4));
  const size_t queries =
      static_cast<size_t>(args->GetInt("queries", 4).value_or(4));
  const int64_t k = args->GetInt("k", 10).value_or(10);
  const uint64_t seed =
      static_cast<uint64_t>(args->GetInt("seed", 1).value_or(1));
  const std::string prefix = args->GetString("prefix", "http");
  std::vector<std::string> query_pool;
  const std::string query_file = args->GetString("query-file");
  if (!query_file.empty()) {
    const Result<std::string> loaded = ReadFileToString(query_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 2;
    }
    for (const std::string& line : Split(*loaded, '\n')) {
      const std::string_view trimmed = Trim(line);
      if (!trimmed.empty()) query_pool.emplace_back(trimmed);
    }
    if (query_pool.empty()) {
      std::fprintf(stderr, "--query-file %s has no queries\n",
                   query_file.c_str());
      return 2;
    }
  }

  DriverTotals totals;
  std::vector<std::string> out_lines(sessions * queries);
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    net::HttpClient client;
    const Status connected = client.Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "%s\n", connected.ToString().c_str());
      totals.failures.fetch_add(1);
      return;
    }
    for (size_t j = next++; j < sessions; j = next++) {
      const std::string session_id = StrFormat("%s-s%zu", prefix.c_str(), j);
      const std::string user_id = StrFormat("u%zu", j % 4);
      const auto expect = [&](const Result<net::HttpClientResponse>& r,
                              const char* what) {
        totals.requests.fetch_add(1);
        if (!r.ok()) {
          std::fprintf(stderr, "%s %s: %s\n", session_id.c_str(), what,
                       r.status().ToString().c_str());
          totals.failures.fetch_add(1);
          return false;
        }
        if (r->status != 200) {
          std::fprintf(stderr, "%s %s: HTTP %d %s", session_id.c_str(),
                       what, r->status, r->body.c_str());
          totals.failures.fetch_add(1);
          return false;
        }
        return true;
      };

      if (!expect(client.Post("/v1/session/open",
                              StrFormat("{\"session_id\": %s, "
                                        "\"user_id\": %s}",
                                        net::JsonQuote(session_id).c_str(),
                                        net::JsonQuote(user_id).c_str())),
                  "open")) {
        continue;
      }
      for (size_t q = 0; q < queries; ++q) {
        const std::string text = QueryText(query_pool, seed, j, q);
        const Result<net::HttpClientResponse> searched = client.Post(
            "/v1/search",
            StrFormat("{\"session_id\": %s, \"query\": {\"text\": %s}, "
                      "\"k\": %lld}",
                      net::JsonQuote(session_id).c_str(),
                      net::JsonQuote(text).c_str(),
                      static_cast<long long>(k)));
        if (!expect(searched, "search")) continue;
        // Re-serialize the ranking exactly as received: the score text on
        // the wire is the bit-equality currency.
        std::string line = StrFormat("%s q%zu", session_id.c_str(), q);
        long long first_shot = -1;
        const Result<net::JsonValue> body =
            net::JsonValue::Parse(searched->body);
        if (!body.ok()) {
          std::fprintf(stderr, "%s search: bad JSON: %s\n",
                       session_id.c_str(),
                       body.status().ToString().c_str());
          totals.failures.fetch_add(1);
          continue;
        }
        const net::JsonValue* results = body->Find("results");
        if (results != nullptr && results->is_array()) {
          for (const net::JsonValue& entry : results->items()) {
            const net::JsonValue* shot = entry.Find("shot");
            const net::JsonValue* score = entry.Find("score");
            if (shot == nullptr || score == nullptr) continue;
            if (first_shot < 0) {
              first_shot =
                  static_cast<long long>(shot->number_value());
            }
            totals.results_seen.fetch_add(1);
            line += StrFormat(" %.0f:%.17g", shot->number_value(),
                              score->number_value());
          }
        }
        out_lines[j * queries + q] = line + "\n";
        if (first_shot >= 0) {
          (void)expect(
              client.Post(
                  "/v1/feedback",
                  StrFormat("{\"session_id\": %s, \"event\": "
                            "{\"type\": \"click_keyframe\", \"shot\": %lld, "
                            "\"time\": %zu}}",
                            net::JsonQuote(session_id).c_str(), first_shot,
                            j * 1000 + q)),
              "feedback");
        }
      }
      (void)expect(client.Post("/v1/session/close",
                               StrFormat("{\"session_id\": %s}",
                                         net::JsonQuote(session_id)
                                             .c_str())),
                   "close");
    }
  };

  const auto started = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  const uint64_t requests = totals.requests.load();
  const uint64_t failures = totals.failures.load();
  std::printf(
      "drove %zu sessions, %llu requests in %.3fs (%.1f req/s), "
      "%llu results, %llu failures\n",
      sessions, static_cast<unsigned long long>(requests), elapsed,
      elapsed > 0 ? requests / elapsed : 0.0,
      static_cast<unsigned long long>(totals.results_seen.load()),
      static_cast<unsigned long long>(failures));

  int rc = failures == 0 ? 0 : 1;
  const std::string out_path = args->GetString("out");
  if (!out_path.empty()) {
    std::string all;
    for (const std::string& line : out_lines) all += line;
    const Status written = WriteFileAtomic(out_path, all);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      rc = 1;
    }
  }
  const std::string statsz_path = args->GetString("statsz-out");
  if (!statsz_path.empty()) {
    net::HttpClient client;
    Status fetched = client.Connect(host, port);
    if (fetched.ok()) {
      const Result<net::HttpClientResponse> statsz = client.Get("/statsz");
      if (statsz.ok() && statsz->status == 200) {
        fetched = WriteFileAtomic(statsz_path, statsz->body);
      } else {
        fetched = statsz.ok() ? Status::Internal(StrFormat(
                                    "GET /statsz: HTTP %d", statsz->status))
                              : statsz.status();
      }
    }
    if (!fetched.ok()) {
      std::fprintf(stderr, "%s\n", fetched.ToString().c_str());
      rc = 1;
    }
  }
  return obs::FinishToolWithObs(*args, rc);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
