// ivr_generate — build a synthetic news-video test collection and save it
// as an archive the other tools consume.
//
//   ivr_generate --out collection.ivr [--seed 42] [--topics 10]
//                [--videos 25] [--wer 0.3] [--title-offset 6]
//                [--qrels qrels.txt] [--fault-spec SPEC] [--fault-seed N]
//                [--stats-json PATH] [--trace PATH]
//
// --stats-json writes the process metrics snapshot (schema-versioned
// JSON) at exit; --trace enables span recording and writes a JSONL trace.
//
// The optional --qrels path additionally writes the judgements in plain
// TREC qrels format for external tooling. All outputs are written
// atomically (temp file + fsync + rename): on any failure — including
// injected chaos faults — the tool exits non-zero without leaving a
// partial file behind.

#include <cstdio>

#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/obs/report.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status flags_ok = args->RejectUnknown(
      {"out", "qrels", "seed", "topics", "videos", "wer", "title-offset",
       "general-word-prob", "leak", "words-per-shot", "fault-spec",
       "fault-seed", "stats-json", "trace"});
  if (!flags_ok.ok()) {
    std::fprintf(stderr, "%s\n", flags_ok.ToString().c_str());
    return 2;
  }
  const std::string out_path = args->GetString("out");
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "usage: ivr_generate --out FILE [--seed N] [--topics N] "
                 "[--videos N] [--wer F] [--title-offset N] "
                 "[--qrels FILE] [--fault-spec SPEC] [--fault-seed N] "
                 "[--stats-json PATH] [--trace PATH]\n");
    return 2;
  }
  const Status faults = ConfigureFaultInjectionFromArgs(*args);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 2;
  }
  const Status obs_configured = obs::ConfigureObsFromArgs(*args);
  if (!obs_configured.ok()) {
    std::fprintf(stderr, "%s\n", obs_configured.ToString().c_str());
    return 2;
  }

  GeneratorOptions options;
  options.seed = static_cast<uint64_t>(
      args->GetInt("seed", 42).value_or(42));
  options.num_topics = static_cast<size_t>(
      args->GetInt("topics", 10).value_or(10));
  options.num_videos = static_cast<size_t>(
      args->GetInt("videos", 25).value_or(25));
  options.asr_word_error_rate = args->GetDouble("wer", 0.3).value_or(0.3);
  options.topic_title_word_offset = static_cast<size_t>(
      args->GetInt("title-offset", 6).value_or(6));
  options.general_word_prob =
      args->GetDouble("general-word-prob", 0.65).value_or(0.65);
  options.topic_word_leak_prob =
      args->GetDouble("leak", 0.3).value_or(0.3);
  options.words_per_shot_mean =
      args->GetDouble("words-per-shot", 14.0).value_or(14.0);

  Result<GeneratedCollection> generated = GenerateCollection(options);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const Status saved = SaveCollection(*generated, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu videos, %zu stories, %zu shots, %zu topics, "
              "%zu judgements\n",
              out_path.c_str(), generated->collection.num_videos(),
              generated->collection.num_stories(),
              generated->collection.num_shots(), generated->topics.size(),
              generated->qrels.TotalJudgments());

  const std::string qrels_path = args->GetString("qrels");
  if (!qrels_path.empty()) {
    const Status qs =
        WriteFileAtomic(qrels_path, generated->qrels.ToTrecFormat());
    if (!qs.ok()) {
      std::fprintf(stderr, "%s\n", qs.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", qrels_path.c_str());
  }
  if (FaultInjector::Global().enabled()) {
    std::fprintf(stderr, "%s", FaultInjector::Global().Summary().c_str());
  }
  return obs::FinishToolWithObs(*args, 0);
}

}  // namespace
}  // namespace ivr

int main(int argc, char** argv) { return ivr::Main(argc, argv); }
