// E1 — Baseline retrieval over the synthetic news-video collection.
//
// Sweeps the ASR word-error rate and compares the three text scorers the
// framework ships (BM25, TF-IDF, Dirichlet LM), text-only vs multimodal
// (text + visual example) retrieval. Reproduces the semantic-gap
// motivation of the paper: transcript-based retrieval degrades with ASR
// noise, and even the best configuration leaves a large gap to perfect
// retrieval, which is the headroom adaptation targets.
//
// Expected shape: MAP decreases monotonically with WER for every scorer;
// BM25 >= TF-IDF; multimodal fusion recovers part of the high-WER loss.

#include "bench_util.h"
#include "ivr/feedback/backend.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("E1", "baseline retrieval vs ASR word-error rate");
  SetLogLevel(LogLevel::kWarning);

  TextTable table({"wer", "scorer", "modality", "MAP", "P@10", "nDCG@10",
                   "bpref"});
  const double wers[] = {0.0, 0.15, 0.30, 0.45};
  const char* scorers[] = {"bm25", "tfidf", "lm"};

  for (double wer : wers) {
    const GeneratedCollection g =
        MustGenerate(StandardCollectionOptions(wer));
    const std::vector<SearchTopicId> ids = TopicIds(g.topics);

    for (const char* scorer : scorers) {
      EngineOptions options;
      options.scorer = scorer;
      auto engine = MustBuildEngine(g.collection, options);
      StaticBackend backend(*engine);
      const SystemEvaluation eval = EvaluateSystem(
          RunAllTopics(&backend, g.topics, scorer), g.qrels, ids);
      table.AddRow({StrFormat("%.2f", wer), scorer, "text",
                    FormatMetric(eval.mean.ap), FormatMetric(eval.mean.p10),
                    FormatMetric(eval.mean.ndcg10),
                    FormatMetric(eval.mean.bpref)});
    }

    // Multimodal run (BM25 text + visual examples).
    auto engine = MustBuildEngine(g.collection);
    SystemRun multimodal;
    multimodal.system = "bm25+visual";
    for (const SearchTopic& topic : g.topics.topics) {
      Query query;
      query.text = topic.title;
      query.examples = topic.examples;
      multimodal.runs[topic.id] = engine->Search(query, 1000);
    }
    const SystemEvaluation eval =
        EvaluateSystem(multimodal, g.qrels, ids);
    table.AddRow({StrFormat("%.2f", wer), "bm25", "text+visual",
                  FormatMetric(eval.mean.ap), FormatMetric(eval.mean.p10),
                  FormatMetric(eval.mean.ndcg10),
                  FormatMetric(eval.mean.bpref)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
