// E1 — Baseline retrieval over the synthetic news-video collection.
//
// Sweeps the ASR word-error rate and compares the three text scorers the
// framework ships (BM25, TF-IDF, Dirichlet LM), text-only vs multimodal
// (text + visual example) retrieval. Reproduces the semantic-gap
// motivation of the paper: transcript-based retrieval degrades with ASR
// noise, and even the best configuration leaves a large gap to perfect
// retrieval, which is the headroom adaptation targets.
//
// Expected shape: MAP decreases monotonically with WER for every scorer;
// BM25 >= TF-IDF; multimodal fusion recovers part of the high-WER loss.
// The closing throughput table sweeps BatchSearch over thread counts;
// expected: >= 2x QPS at 4 threads over 1, identical rankings throughout.

#include <chrono>

#include "bench_util.h"
#include "ivr/core/thread_pool.h"
#include "ivr/feedback/backend.h"

namespace ivr {
namespace bench {
namespace {

/// Wall-clock QPS of answering `queries` with `threads` workers.
double MeasureBatchQps(const RetrievalEngine& engine,
                       const std::vector<Query>& queries, size_t threads) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const std::vector<ResultList> results =
      engine.BatchSearch(queries, 1000, threads);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (results.size() != queries.size() || seconds <= 0.0) return 0.0;
  return static_cast<double>(queries.size()) / seconds;
}

void ThroughputSweep() {
  Banner("E1b", "batched query throughput vs threads");
  // Speedup scales with physical cores (expect >= 2x at 4 threads on a
  // 4-core host); on a single-core host the table only shows that the
  // parallel path adds no meaningful overhead.
  std::printf("hardware concurrency: %zu\n",
              ThreadPool::DefaultThreadCount());
  // A collection an order of magnitude beyond the evaluation standard, so
  // per-query cost reflects a realistic archive rather than pool startup.
  GeneratorOptions options = StandardCollectionOptions();
  options.num_videos = 250;
  const GeneratedCollection g = MustGenerate(options);
  auto engine = MustBuildEngine(g.collection);

  // Enough volume to amortise pool startup: every topic title, many times,
  // padded with description words for multi-term postings traversal.
  std::vector<Query> queries;
  for (int repeat = 0; repeat < 100; ++repeat) {
    for (const SearchTopic& topic : g.topics.topics) {
      Query query;
      query.text = topic.title + " " + topic.description;
      queries.push_back(std::move(query));
    }
  }

  // Warm-up pass (touches every posting list once) and reference ranking.
  const std::vector<ResultList> reference =
      engine->BatchSearch(queries, 1000, 1);

  TextTable table({"threads", "queries", "QPS", "speedup"});
  const double qps1 = MeasureBatchQps(*engine, queries, 1);
  table.AddRow({"1", StrFormat("%zu", queries.size()),
                StrFormat("%.0f", qps1), "1.00x"});
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    const double qps = MeasureBatchQps(*engine, queries, threads);
    table.AddRow({StrFormat("%zu", threads),
                  StrFormat("%zu", queries.size()), StrFormat("%.0f", qps),
                  StrFormat("%.2fx", qps1 > 0.0 ? qps / qps1 : 0.0)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Sanity: the parallel path must return the sequential ranking bitwise.
  const std::vector<ResultList> parallel =
      engine->BatchSearch(queries, 1000, 4);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (parallel[i].size() != reference[i].size()) {
      std::printf("WARNING: thread-count-dependent results on query %zu\n",
                  i);
      return;
    }
    for (size_t j = 0; j < parallel[i].size(); ++j) {
      if (parallel[i].at(j).shot != reference[i].at(j).shot ||
          parallel[i].at(j).score != reference[i].at(j).score) {
        std::printf(
            "WARNING: thread-count-dependent results on query %zu\n", i);
        return;
      }
    }
  }
  std::printf("parallel rankings bit-identical to sequential: OK\n\n");
}

void Run() {
  Banner("E1", "baseline retrieval vs ASR word-error rate");
  SetLogLevel(LogLevel::kWarning);

  TextTable table({"wer", "scorer", "modality", "MAP", "P@10", "nDCG@10",
                   "bpref"});
  const double wers[] = {0.0, 0.15, 0.30, 0.45};
  const char* scorers[] = {"bm25", "tfidf", "lm"};

  for (double wer : wers) {
    const GeneratedCollection g =
        MustGenerate(StandardCollectionOptions(wer));
    const std::vector<SearchTopicId> ids = TopicIds(g.topics);

    for (const char* scorer : scorers) {
      EngineOptions options;
      options.scorer = scorer;
      auto engine = MustBuildEngine(g.collection, options);
      StaticBackend backend(*engine);
      const SystemEvaluation eval = EvaluateSystem(
          RunAllTopics(&backend, g.topics, scorer), g.qrels, ids);
      table.AddRow({StrFormat("%.2f", wer), scorer, "text",
                    FormatMetric(eval.mean.ap), FormatMetric(eval.mean.p10),
                    FormatMetric(eval.mean.ndcg10),
                    FormatMetric(eval.mean.bpref)});
    }

    // Multimodal run (BM25 text + visual examples).
    auto engine = MustBuildEngine(g.collection);
    SystemRun multimodal;
    multimodal.system = "bm25+visual";
    for (const SearchTopic& topic : g.topics.topics) {
      Query query;
      query.text = topic.title;
      query.examples = topic.examples;
      multimodal.runs[topic.id] = engine->Search(query, 1000);
    }
    const SystemEvaluation eval =
        EvaluateSystem(multimodal, g.qrels, ids);
    table.AddRow({StrFormat("%.2f", wer), "bm25", "text+visual",
                  FormatMetric(eval.mean.ap), FormatMetric(eval.mean.p10),
                  FormatMetric(eval.mean.ndcg10),
                  FormatMetric(eval.mean.bpref)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  ivr::bench::ThroughputSweep();
  return 0;
}
