// E-S1 — Concurrent-session service throughput (sessions/sec vs threads).
// E-C1 — Result-cache hit rate and warm-serving latency vs cache budget.
//
// The paper's methodology presumes a deployed retrieval service many
// users hit at once; this binary measures what the SessionManager layer
// adds over the single-session library. Two workload shapes:
//
//  * paced ("open-loop"): every simulated user action carries a think
//    time spent off-CPU, the realistic interactive regime. Throughput
//    here scales with how many blocked sessions a driver can multiplex,
//    so it rises with threads even on a single core.
//  * unpaced ("closed-loop"): sessions run flat out, measuring raw
//    service overhead; scaling then tracks physical core count.
//
// Each configuration also verifies the determinism contract: per-session
// event streams and rankings from the multi-threaded run must be
// bit-identical to a sequential run of the same workload.
//
// E-C1 then replays a repeated-query workload (every topic's full
// multi-modal query, many rounds — the shape concurrent sessions on the
// same topics produce) against the base engine at several --cache-mb
// budgets, reporting hit rate, warm-round latency, and the speedup over
// uncached serving; every cached ranking is checked bit-identical to the
// uncached reference.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ivr/cache/result_cache.h"
#include "ivr/service/managed_backend.h"
#include "ivr/service/session_manager.h"

namespace ivr {
namespace bench {
namespace {

std::string Signature(const SimulatedSession& session) {
  std::string sig;
  for (const InteractionEvent& event : session.events) {
    sig += SessionLog::EventToLine(event);
    sig += "\n";
  }
  for (const ResultList& results : session.outcome.per_query_results) {
    for (const RankedShot& entry : results.items()) {
      sig += StrFormat("%u:%.17g ", entry.shot, entry.score);
    }
    sig += "\n";
  }
  return sig;
}

std::vector<SimulatedSession> Drive(SessionManager* manager,
                                    const GeneratedCollection& g,
                                    size_t num_sessions, size_t threads,
                                    TimeMs think_ms) {
  const SessionSimulator simulator(g.collection, g.qrels);
  const UserModel user = NoviceUser();
  const std::vector<SearchTopic>& topics = g.topics.topics;
  std::vector<SimulatedSession> sessions(num_sessions);
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t j = next++; j < num_sessions; j = next++) {
      SessionSimulator::RunConfig config;
      config.seed = 100 + j * 131;
      config.session_id = "es1-s" + std::to_string(j);
      config.user_id = user.name + std::to_string(j % 4);
      ManagedSessionBackend backend(manager, config.session_id,
                                    config.user_id, think_ms);
      Result<SimulatedSession> session = simulator.Run(
          &backend, topics[j % topics.size()], user, config, nullptr);
      (void)backend.EndSession();
      if (session.ok()) sessions[j] = std::move(session).value();
    }
  };
  std::vector<std::thread> pool;
  for (size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return sessions;
}

std::string RankingSignature(const ResultList& list) {
  std::string sig;
  for (const RankedShot& entry : list.items()) {
    sig += StrFormat("%u:%.17g ", entry.shot, entry.score);
  }
  return sig;
}

int CacheSweep(const GeneratedCollection& g, const RetrievalEngine& engine) {
  Banner("E-C1", "result-cache hit rate and warm-serving latency");

  // The repeated-query workload: every topic's full multi-modal query,
  // kRounds times over. Round 0 is the cold fill; later rounds model
  // concurrent sessions re-issuing the same base queries.
  std::vector<Query> queries;
  for (const SearchTopic& topic : g.topics.topics) {
    Query query;
    query.text = topic.title;
    query.examples = topic.examples;
    queries.push_back(std::move(query));
  }
  const size_t kRounds = 30;
  const size_t kK = 1000;

  // Uncached baseline: mean per-query latency and reference rankings.
  std::vector<std::string> reference;
  for (const Query& query : queries) {
    reference.push_back(RankingSignature(engine.Search(query, kK)));
  }
  const auto uncached_started = std::chrono::steady_clock::now();
  for (size_t round = 0; round < kRounds; ++round) {
    for (const Query& query : queries) (void)engine.Search(query, kK);
  }
  const double uncached_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - uncached_started)
          .count() /
      static_cast<double>(kRounds * queries.size());

  std::printf("uncached baseline: %.0f us/query (%zu queries x %zu "
              "rounds)\n\n",
              uncached_us, queries.size(), kRounds);
  std::printf("%-10s %10s %10s %12s %10s %10s\n", "cache_kb", "hit_rate",
              "evict+rej", "warm_us", "speedup", "identical");

  bool all_identical = true;
  double best_speedup = 0.0;
  // Sub-MB budgets exercise the pressure regimes (per-shard rejection of
  // oversized entries, LRU churn); the MB budgets hold the working set.
  for (const size_t budget_kb : {size_t{64}, size_t{256}, size_t{1024},
                                 size_t{65536}}) {
    auto cached = MustBuildEngine(g.collection);
    ResultCacheOptions options;
    options.max_bytes = budget_kb * 1024;
    auto cache = std::make_shared<ResultCache>(options);
    cached->AttachCache(cache);

    // Cold fill + one warm verification pass, both untimed: the bit-check
    // formats every ranking, which must not pollute the latency numbers.
    size_t identical = 0;
    size_t checked = 0;
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < queries.size(); ++i) {
        if (RankingSignature(cached->Search(queries[i], kK)) ==
            reference[i]) {
          ++identical;
        }
        ++checked;
      }
    }
    // Timed warm rounds: the serving path alone, same loop shape as the
    // uncached baseline.
    const auto warm_started = std::chrono::steady_clock::now();
    for (size_t round = 0; round < kRounds; ++round) {
      for (const Query& query : queries) (void)cached->Search(query, kK);
    }
    const double warm_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - warm_started)
            .count() /
        static_cast<double>(kRounds * queries.size());

    const ResultCacheStats stats = cache->Stats();
    const double lookups = static_cast<double>(stats.hits + stats.misses);
    const double hit_rate =
        lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
    const double speedup = warm_us > 0 ? uncached_us / warm_us : 0.0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::printf("%-10zu %9.1f%% %10zu %12.0f %9.2fx %7zu/%zu\n", budget_kb,
                hit_rate * 100.0,
                static_cast<size_t>(stats.evictions + stats.rejected_inserts),
                warm_us, speedup, identical, checked);
    if (identical != checked) all_identical = false;
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: cached serving diverged from uncached rankings\n");
    return 1;
  }
  std::printf(
      "\nExpected shape: every budget serves bit-identical rankings —\n"
      "under-budget caches degrade hit rate, never correctness. Once the\n"
      "working set fits, warm per-query latency drops well over 2x vs\n"
      "uncached. Under-budget shapes are workload-dependent: a budget\n"
      "that rejects oversized entries outright can out-hit a slightly\n"
      "larger one that admits them and churns (sequential-cycling LRU).\n");
  if (best_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: warm-cache speedup %.2fx below the 2x floor\n",
                 best_speedup);
    return 1;
  }
  return 0;
}

int Main() {
  Banner("E-S1", "concurrent-session service throughput");
  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  const auto engine = MustBuildEngine(g.collection);
  const AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);

  const size_t kSessions = 48;
  const TimeMs kThink = 2;  // ms per simulated user action, spent off-CPU

  // Sequential references, once per workload shape.
  SessionManagerOptions options;
  options.num_shards = 8;
  std::vector<std::string> reference;
  {
    SessionManager manager(adaptive, options);
    for (const SimulatedSession& s :
         Drive(&manager, g, kSessions, 1, 0)) {
      reference.push_back(Signature(s));
    }
  }

  std::printf("%-8s %-8s %12s %12s %10s\n", "mode", "threads",
              "elapsed_s", "sessions/s", "identical");
  for (const bool paced : {false, true}) {
    double base_rate = 0.0;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4},
                                 size_t{8}}) {
      SessionManager manager(adaptive, options);
      const auto started = std::chrono::steady_clock::now();
      const std::vector<SimulatedSession> sessions =
          Drive(&manager, g, kSessions, threads, paced ? kThink : 0);
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
      size_t identical = 0;
      for (size_t j = 0; j < sessions.size(); ++j) {
        if (Signature(sessions[j]) == reference[j]) ++identical;
      }
      const double rate = kSessions / elapsed;
      if (threads == 1) base_rate = rate;
      std::printf("%-8s %-8zu %12.3f %12.1f %7zu/%zu  (%.2fx)\n",
                  paced ? "paced" : "unpaced", threads, elapsed, rate,
                  identical, sessions.size(), rate / base_rate);
      if (identical != sessions.size()) {
        std::fprintf(stderr,
                     "FAIL: results diverged from the sequential run\n");
        return 1;
      }
    }
  }
  std::printf(
      "\nExpected shape: identical results at every thread count; paced\n"
      "throughput scales near-linearly with threads (blocked sessions\n"
      "multiplex); unpaced scaling is bounded by physical cores.\n\n");
  return CacheSweep(g, *engine);
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() { return ivr::bench::Main(); }
