// E-S1 — Concurrent-session service throughput (sessions/sec vs threads).
//
// The paper's methodology presumes a deployed retrieval service many
// users hit at once; this binary measures what the SessionManager layer
// adds over the single-session library. Two workload shapes:
//
//  * paced ("open-loop"): every simulated user action carries a think
//    time spent off-CPU, the realistic interactive regime. Throughput
//    here scales with how many blocked sessions a driver can multiplex,
//    so it rises with threads even on a single core.
//  * unpaced ("closed-loop"): sessions run flat out, measuring raw
//    service overhead; scaling then tracks physical core count.
//
// Each configuration also verifies the determinism contract: per-session
// event streams and rankings from the multi-threaded run must be
// bit-identical to a sequential run of the same workload.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ivr/service/managed_backend.h"
#include "ivr/service/session_manager.h"

namespace ivr {
namespace bench {
namespace {

std::string Signature(const SimulatedSession& session) {
  std::string sig;
  for (const InteractionEvent& event : session.events) {
    sig += SessionLog::EventToLine(event);
    sig += "\n";
  }
  for (const ResultList& results : session.outcome.per_query_results) {
    for (const RankedShot& entry : results.items()) {
      sig += StrFormat("%u:%.17g ", entry.shot, entry.score);
    }
    sig += "\n";
  }
  return sig;
}

std::vector<SimulatedSession> Drive(SessionManager* manager,
                                    const GeneratedCollection& g,
                                    size_t num_sessions, size_t threads,
                                    TimeMs think_ms) {
  const SessionSimulator simulator(g.collection, g.qrels);
  const UserModel user = NoviceUser();
  const std::vector<SearchTopic>& topics = g.topics.topics;
  std::vector<SimulatedSession> sessions(num_sessions);
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t j = next++; j < num_sessions; j = next++) {
      SessionSimulator::RunConfig config;
      config.seed = 100 + j * 131;
      config.session_id = "es1-s" + std::to_string(j);
      config.user_id = user.name + std::to_string(j % 4);
      ManagedSessionBackend backend(manager, config.session_id,
                                    config.user_id, think_ms);
      Result<SimulatedSession> session = simulator.Run(
          &backend, topics[j % topics.size()], user, config, nullptr);
      (void)backend.EndSession();
      if (session.ok()) sessions[j] = std::move(session).value();
    }
  };
  std::vector<std::thread> pool;
  for (size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return sessions;
}

int Main() {
  Banner("E-S1", "concurrent-session service throughput");
  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  const auto engine = MustBuildEngine(g.collection);
  const AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);

  const size_t kSessions = 48;
  const TimeMs kThink = 2;  // ms per simulated user action, spent off-CPU

  // Sequential references, once per workload shape.
  SessionManagerOptions options;
  options.num_shards = 8;
  std::vector<std::string> reference;
  {
    SessionManager manager(adaptive, options);
    for (const SimulatedSession& s :
         Drive(&manager, g, kSessions, 1, 0)) {
      reference.push_back(Signature(s));
    }
  }

  std::printf("%-8s %-8s %12s %12s %10s\n", "mode", "threads",
              "elapsed_s", "sessions/s", "identical");
  for (const bool paced : {false, true}) {
    double base_rate = 0.0;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4},
                                 size_t{8}}) {
      SessionManager manager(adaptive, options);
      const auto started = std::chrono::steady_clock::now();
      const std::vector<SimulatedSession> sessions =
          Drive(&manager, g, kSessions, threads, paced ? kThink : 0);
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
      size_t identical = 0;
      for (size_t j = 0; j < sessions.size(); ++j) {
        if (Signature(sessions[j]) == reference[j]) ++identical;
      }
      const double rate = kSessions / elapsed;
      if (threads == 1) base_rate = rate;
      std::printf("%-8s %-8zu %12.3f %12.1f %7zu/%zu  (%.2fx)\n",
                  paced ? "paced" : "unpaced", threads, elapsed, rate,
                  identical, sessions.size(), rate / base_rate);
      if (identical != sessions.size()) {
        std::fprintf(stderr,
                     "FAIL: results diverged from the sequential run\n");
        return 1;
      }
    }
  }
  std::printf(
      "\nExpected shape: identical results at every thread count; paced\n"
      "throughput scales near-linearly with threads (blocked sessions\n"
      "multiplex); unpaced scaling is bounded by physical cores.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() { return ivr::bench::Main(); }
