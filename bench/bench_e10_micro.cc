// E10 — Engine micro-costs (framework viability).
//
// The paper's Section 3 framework must answer queries, absorb feedback
// and re-rank at interactive rates to be usable from a desktop UI or an
// iTV box. These google-benchmark timings regenerate the cost table:
// index construction, query latency vs query length, visual kNN search,
// Rocchio expansion, feedback-adapted search, and metric computation.
//
// Expected shape: queries and feedback updates complete in well under a
// frame budget (milliseconds) on the standard collection; adaptation
// overhead is a small multiple of plain search, not orders of magnitude.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ivr/obs/metrics.h"
#include "ivr/obs/trace.h"
#include "ivr/retrieval/rocchio.h"

namespace ivr {
namespace bench {
namespace {

// Shared fixtures, built once (function-local static: benchmarks must not
// regenerate the collection per iteration).
const GeneratedCollection& Fixture() {
  static const GeneratedCollection& g =
      *new GeneratedCollection(MustGenerate(StandardCollectionOptions()));
  return g;
}

const RetrievalEngine& Engine() {
  static const RetrievalEngine& engine =
      *MustBuildEngine(Fixture().collection).release();
  return engine;
}

void BM_CollectionGeneration(benchmark::State& state) {
  GeneratorOptions options = StandardCollectionOptions();
  for (auto _ : state) {
    options.seed++;
    benchmark::DoNotOptimize(MustGenerate(options));
  }
}
BENCHMARK(BM_CollectionGeneration)->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  const GeneratedCollection& g = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustBuildEngine(g.collection));
  }
  state.counters["shots"] =
      static_cast<double>(g.collection.num_shots());
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

void BM_TextQuery(benchmark::State& state) {
  const GeneratedCollection& g = Fixture();
  const RetrievalEngine& engine = Engine();
  // Query length sweep: 1..8 terms drawn from a topic description.
  const std::vector<std::string> words =
      SplitWhitespace(g.topics.topics[0].description);
  std::string text;
  for (int64_t i = 0; i < state.range(0); ++i) {
    if (i > 0) text += " ";
    text += words[static_cast<size_t>(i) % words.size()];
  }
  Query query;
  query.text = text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Search(query, 200));
  }
}
BENCHMARK(BM_TextQuery)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void BM_BatchSearch(benchmark::State& state) {
  // Sweep-style batched retrieval: every topic title answered at once,
  // fanned out over range(0) workers. Single- vs multi-threaded QPS is
  // the headline number for parallel topic sweeps.
  const GeneratedCollection& g = Fixture();
  const RetrievalEngine& engine = Engine();
  std::vector<Query> queries;
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (const SearchTopic& topic : g.topics.topics) {
      Query query;
      query.text = topic.title;
      queries.push_back(std::move(query));
    }
  }
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.BatchSearch(queries, 200, threads));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_BatchSearch)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_VisualQuery(benchmark::State& state) {
  const GeneratedCollection& g = Fixture();
  const RetrievalEngine& engine = Engine();
  Query query;
  query.examples = g.topics.topics[0].examples;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Search(query, 200));
  }
}
BENCHMARK(BM_VisualQuery)->Unit(benchmark::kMicrosecond);

void BM_RocchioExpansion(benchmark::State& state) {
  const GeneratedCollection& g = Fixture();
  const RetrievalEngine& engine = Engine();
  const TermQuery original = engine.ParseText(g.topics.topics[0].title);
  std::vector<FeedbackDoc> positive;
  for (int64_t i = 0; i < state.range(0); ++i) {
    positive.push_back(FeedbackDoc{
        engine.IndexedText(static_cast<ShotId>(i)), 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RocchioExpand(original, positive, {},
                                           engine.analyzer()));
  }
}
BENCHMARK(BM_RocchioExpansion)->Arg(3)->Arg(10)->Arg(30)->Unit(
    benchmark::kMicrosecond);

void BM_AdaptedSearch(benchmark::State& state) {
  // Full adaptive round: feedback from `range` engaged shots, then an
  // expanded + reranked query — what one SubmitQuery costs mid-session.
  const GeneratedCollection& g = Fixture();
  const RetrievalEngine& engine = Engine();
  const SearchTopic& topic = g.topics.topics[0];
  UserProfile profile("micro");
  profile.SetInterest(topic.target_topic, 1.0);
  AdaptiveOptions options;
  options.use_profile = true;
  AdaptiveEngine adaptive(engine, options, &profile);
  adaptive.BeginSession();
  const std::vector<ShotId> relevant =
      g.qrels.RelevantShots(topic.id, 2);
  for (int64_t i = 0; i < state.range(0); ++i) {
    InteractionEvent click;
    click.time = i * 1000;
    click.type = EventType::kClickKeyframe;
    click.shot = relevant[static_cast<size_t>(i) % relevant.size()];
    adaptive.ObserveEvent(click);
    InteractionEvent play;
    play.time = i * 1000 + 500;
    play.type = EventType::kPlayStop;
    play.shot = click.shot;
    play.value = 9000.0;
    adaptive.ObserveEvent(play);
  }
  Query query;
  query.text = topic.title;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adaptive.Search(query, 200));
  }
}
BENCHMARK(BM_AdaptedSearch)->Arg(0)->Arg(5)->Arg(20)->Unit(
    benchmark::kMicrosecond);

void BM_ObserveEvent(benchmark::State& state) {
  const RetrievalEngine& engine = Engine();
  AdaptiveEngine adaptive(engine, AdaptiveOptions(), nullptr);
  InteractionEvent ev;
  ev.type = EventType::kClickKeyframe;
  ev.shot = 1;
  for (auto _ : state) {
    adaptive.ObserveEvent(ev);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObserveEvent);

void BM_MetricsComputation(benchmark::State& state) {
  const GeneratedCollection& g = Fixture();
  const RetrievalEngine& engine = Engine();
  Query query;
  query.text = g.topics.topics[0].title;
  const ResultList run = engine.Search(query, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeTopicMetrics(run, g.qrels, g.topics.topics[0].id));
  }
}
BENCHMARK(BM_MetricsComputation)->Unit(benchmark::kMicrosecond);

// E-O1 — observability primitive costs. These bound what the registry
// instrumentation can cost per call site: a cached-pointer counter
// increment and a histogram record are the two hot-path operations the
// engine/adaptive/service layers perform per query, and a span on a
// disabled recorder is what every traced region pays when --trace is not
// given. Under -DIVR_OBS_OFF=ON all three compile to (near) nothing.
void BM_MetricsCounterInc(benchmark::State& state) {
  obs::Counter* counter =
      obs::Registry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Inc();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  obs::LatencyHistogram* histogram =
      obs::Registry::Global().GetHistogram("bench.histogram");
  int64_t value = 1;
  for (auto _ : state) {
    histogram->Record(value);
    value = (value * 7) & 0xFFFFF;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_StopwatchRead(benchmark::State& state) {
  // A full Stopwatch round trip (ctor + ElapsedUs): two clock reads
  // through the injectable-clock indirection — the dominant per-site
  // cost of latency instrumentation. A no-op under IVR_OBS_OFF.
  for (auto _ : state) {
    const obs::Stopwatch watch;
    benchmark::DoNotOptimize(watch.ElapsedUs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StopwatchRead);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  // The recorder is off (nobody passed --trace): the span constructor
  // must bail on the enabled check without touching the clock.
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_SimulatedSession(benchmark::State& state) {
  const GeneratedCollection& g = Fixture();
  const RetrievalEngine& engine = Engine();
  StaticBackend backend(engine);
  SessionSimulator simulator(g.collection, g.qrels);
  uint64_t seed = 1;
  for (auto _ : state) {
    SessionSimulator::RunConfig config;
    config.seed = seed++;
    benchmark::DoNotOptimize(simulator.Run(&backend, g.topics.topics[0],
                                           NoviceUser(), config, nullptr));
  }
}
BENCHMARK(BM_SimulatedSession)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ivr

BENCHMARK_MAIN();
