// E6 — Is display/dwell time a reliable implicit indicator?
//
// Kelly & Belkin [13] (cited by the paper as grounds for caution) showed
// that display time depends on the task, not just on relevance. We
// reproduce that: two user populations work with the same interface but
// different tasks — a directed search task (watch only what helps) and a
// lean-back browsing task (watch most things for a while regardless).
// A playback-time threshold classifier ("played longer than T => the user
// found it relevant") is tuned globally and per task.
//
// Expected shape: the optimal threshold differs strongly between tasks;
// the single global threshold loses substantial accuracy on at least one
// task, while per-task thresholds recover it — dwell time alone, without
// task context, is an unreliable indicator.

#include <algorithm>

#include "bench_util.h"
#include "ivr/feedback/indicators.h"

namespace ivr {
namespace bench {
namespace {

struct Sample {
  double play_ms = 0.0;
  bool relevant = false;
};

// Classification accuracy of "play_ms >= threshold => relevant".
double Accuracy(const std::vector<Sample>& samples, double threshold) {
  if (samples.empty()) return 0.0;
  size_t correct = 0;
  for (const Sample& s : samples) {
    const bool predicted = s.play_ms >= threshold;
    if (predicted == s.relevant) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

double BestThreshold(const std::vector<Sample>& samples, double* best_acc) {
  double best_t = 0.0;
  *best_acc = 0.0;
  for (double t = 0.0; t <= 15000.0; t += 250.0) {
    const double acc = Accuracy(samples, t);
    if (acc > *best_acc) {
      *best_acc = acc;
      best_t = t;
    }
  }
  return best_t;
}

void Run() {
  Banner("E6", "dwell/display time vs task type (Kelly–Belkin check)");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend backend(*engine);

  // Task A: directed search — watch what helps, abandon the rest fast.
  UserModel directed = ExpertUser();
  directed.name = "directed-search";
  directed.play_through_fraction = 0.9;
  directed.play_abandon_fraction = 0.1;
  directed.click_if_unpromising = 0.25;  // checks borderline results too

  // Task B: lean-back browsing — watches most clips for a good while.
  UserModel leanback = NoviceUser();
  leanback.name = "lean-back";
  leanback.play_through_fraction = 0.95;
  leanback.play_abandon_fraction = 0.65;  // keeps watching non-relevant
  leanback.click_if_unpromising = 0.5;

  struct Task {
    const char* label;
    UserModel user;
    std::vector<Sample> samples;
  };
  Task tasks[] = {{"directed search", directed, {}},
                  {"lean-back browse", leanback, {}}};

  size_t seeds_per_topic[] = {3, 8};  // the population skews lean-back
  size_t task_index = 0;
  for (Task& task : tasks) {
    SessionLog log;
    SimulateSessions(g, &backend, task.user, Environment::kDesktop,
                     seeds_per_topic[task_index++], &log,
                     /*seed_base=*/11000);
    for (const std::string& session_id : log.SessionIds()) {
      const auto events = log.EventsForSession(session_id);
      if (events.empty()) continue;
      const SearchTopicId topic = events.front().topic;
      for (const auto& [shot, ind] :
           AggregateIndicators(events, &g.collection)) {
        if (ind.play_count == 0) continue;
        task.samples.push_back(
            Sample{ind.play_time_ms, g.qrels.IsRelevant(topic, shot)});
      }
    }
  }

  // Global threshold over the pooled data.
  std::vector<Sample> pooled;
  for (const Task& task : tasks) {
    pooled.insert(pooled.end(), task.samples.begin(), task.samples.end());
  }
  double global_acc = 0.0;
  const double global_t = BestThreshold(pooled, &global_acc);
  std::printf("pooled: %zu played shots, best global threshold %.1fs "
              "(accuracy %.3f)\n\n",
              pooled.size(), global_t / 1000.0, global_acc);

  TextTable table({"task", "plays", "base rate", "best thresh (s)",
                   "acc per-task", "skill", "acc global thresh", "loss"});
  for (const Task& task : tasks) {
    double task_acc = 0.0;
    const double task_t = BestThreshold(task.samples, &task_acc);
    const double with_global = Accuracy(task.samples, global_t);
    size_t relevant = 0;
    for (const Sample& s : task.samples) {
      if (s.relevant) ++relevant;
    }
    const double base = static_cast<double>(relevant) /
                        std::max<size_t>(task.samples.size(), 1);
    // Skill: accuracy above always-predicting the majority class. Zero
    // means dwell carries no relevance information for this task.
    const double majority = std::max(base, 1.0 - base);
    table.AddRow(
        {task.label, StrFormat("%zu", task.samples.size()),
         FormatMetric(base), StrFormat("%.2f", task_t / 1000.0),
         FormatMetric(task_acc), StrFormat("%+.3f", task_acc - majority),
         FormatMetric(with_global),
         FormatRelativeChange(with_global, task_acc)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "reading: 'skill' is accuracy above the majority-class guess; ~0\n"
      "means display time tells us nothing about relevance for that task\n"
      "(Kelly & Belkin), and a one-size-fits-all threshold also hurts the\n"
      "task where dwell IS informative.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
