// E3 — How should implicit indicators be weighted?
//
// The paper's second research question: "how these features have to be
// weighted to increase retrieval performance. It is not clear which
// features are stronger and which are weaker indicators of relevance."
//
// Protocol: record one simulated desktop session per topic against the
// static engine. Train the learned scheme on half the topics' sessions
// (using qrels as labels — the "analyse the logfiles" step). For every
// weighting scheme, feed each test session's events into an adaptive
// engine using that scheme and re-run the topic query; report MAP/P@10
// against the no-feedback baseline, with a paired t-test.
//
// Expected shape: any feedback > none; graded schemes (linear, learned)
// > presence-only schemes (uniform, binary); learned >= hand-tuned
// linear.

#include "bench_util.h"
#include "ivr/feedback/indicators.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("E3", "weighting schemes for implicit indicators");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend backend(*engine);

  // Record sessions (2 per topic: one novice, one expert).
  SessionLog log;
  SimulateSessions(g, &backend, NoviceUser(), Environment::kDesktop, 1,
                   &log, 900);
  SimulateSessions(g, &backend, ExpertUser(), Environment::kDesktop, 1,
                   &log, 1700);

  // Train the learned scheme on the even-indexed topics' sessions.
  std::vector<LabeledIndicators> train;
  for (const std::string& session_id : log.SessionIds()) {
    const auto events = log.EventsForSession(session_id);
    if (events.empty()) continue;
    const SearchTopicId topic = events.front().topic;
    if (topic % 2 != 0) continue;  // odd topics held out for evaluation
    for (const auto& [shot, ind] :
         AggregateIndicators(events, &g.collection)) {
      train.push_back(
          LabeledIndicators{ind, g.qrels.IsRelevant(topic, shot)});
    }
  }
  LearnedWeighting learned;
  const double loss = learned.Train(train);
  std::printf("learned scheme: %zu training examples, log-loss %.3f\n\n",
              train.size(), loss);

  // Evaluation topics: the held-out odd ones.
  std::vector<SearchTopicId> eval_topics;
  for (const SearchTopic& topic : g.topics.topics) {
    if (topic.id % 2 != 0) eval_topics.push_back(topic.id);
  }

  const BinaryWeighting binary;
  const UniformWeighting uniform;
  const LinearWeighting linear;
  struct SchemeEntry {
    const char* label;
    const WeightingScheme* scheme;  // nullptr = no feedback baseline
  };
  const SchemeEntry schemes[] = {
      {"none (baseline)", nullptr}, {"binary", &binary},
      {"uniform", &uniform},        {"linear (hand-tuned)", &linear},
      {"learned (logreg)", &learned},
  };

  TextTable table({"scheme", "MAP", "P@10", "dMAP", "p (t-test)"});
  std::vector<double> baseline_ap;
  double baseline_map = 0.0;

  for (const SchemeEntry& entry : schemes) {
    SystemRun run;
    run.system = entry.label;
    for (SearchTopicId topic_id : eval_topics) {
      const SearchTopic* topic = g.topics.Find(topic_id);
      Query query;
      query.text = topic->title;
      if (entry.scheme == nullptr) {
        run.runs[topic_id] = engine->Search(query, 1000);
        continue;
      }
      AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
      adaptive.SetWeightingScheme(entry.scheme);
      adaptive.BeginSession();
      // Replay this topic's recorded sessions into the engine.
      for (const std::string& session_id : log.SessionIds()) {
        const auto events = log.EventsForSession(session_id);
        if (!events.empty() && events.front().topic == topic_id) {
          for (const InteractionEvent& ev : events) {
            adaptive.ObserveEvent(ev);
          }
        }
      }
      run.runs[topic_id] = adaptive.Search(query, 1000);
    }
    const SystemEvaluation eval = EvaluateSystem(run, g.qrels, eval_topics);
    std::string p_value = "-";
    if (entry.scheme == nullptr) {
      baseline_ap = eval.ApVector();
      baseline_map = eval.mean.ap;
    } else {
      Result<PairedTestResult> test =
          PairedTTest(eval.ApVector(), baseline_ap);
      if (test.ok()) p_value = StrFormat("%.3f", test->p_value);
    }
    table.AddRow({entry.label, FormatMetric(eval.mean.ap),
                  FormatMetric(eval.mean.p10),
                  entry.scheme == nullptr
                      ? std::string("-")
                      : FormatRelativeChange(eval.mean.ap, baseline_map),
                  p_value});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
