// A2 (ablation) — Learning the static profile from behaviour.
//
// The paper treats profiles as self-declared registration data and notes
// their weakness; the natural extension (and the bridge between its two
// evidence sources) is to *learn* the profile from implicit feedback
// across sessions. A cold-start user watches news about their (hidden)
// favourite subject day after day; after each day the ProfileLearner
// folds the session's evidence into the profile. We measure how the
// learned profile's retrieval value approaches that of a perfectly
// declared profile.
//
// Expected shape: the learned profile's interest mass concentrates on the
// true subject within a few sessions; profile-reranked MAP climbs from
// the no-profile baseline towards the declared-profile ceiling.

#include "bench_util.h"
#include "ivr/adaptive/profile_learner.h"
#include "ivr/feedback/estimator.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("A2", "cross-session profile learning (cold start)");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend backend(*engine);
  SessionSimulator simulator(g.collection, g.qrels);
  const LinearWeighting scheme;
  const ImplicitRelevanceEstimator estimator(scheme);
  const ProfileLearner learner;

  // The user's hidden favourite subject is each topic in turn; results
  // are averaged over topics.
  const size_t days = 6;
  std::vector<double> learned_map(days + 1, 0.0);
  std::vector<double> mass_on_target(days + 1, 0.0);
  double declared_map = 0.0;
  double baseline_map = 0.0;

  auto profile_map = [&](const SearchTopic& topic,
                         const UserProfile* profile) {
    AdaptiveOptions options;
    options.use_implicit = false;
    options.use_profile = profile != nullptr;
    AdaptiveEngine adaptive(*engine, options, profile);
    Query query;
    query.text = topic.title;
    return AveragePrecision(adaptive.Search(query, 1000), g.qrels,
                            topic.id);
  };

  for (const SearchTopic& topic : g.topics.topics) {
    baseline_map += profile_map(topic, nullptr);
    UserProfile declared("declared");
    declared.SetInterest(topic.target_topic, 1.0);
    declared_map += profile_map(topic, &declared);

    UserProfile learned("cold-start");
    learned_map[0] += profile_map(topic, &learned);
    mass_on_target[0] += learned.Interest(topic.target_topic);
    for (size_t day = 1; day <= days; ++day) {
      SessionSimulator::RunConfig config;
      config.seed = 5000 + topic.id * 100 + day;
      config.session_id = "day" + std::to_string(day);
      const SimulatedSession session =
          simulator.Run(&backend, topic, NoviceUser(), config, nullptr)
              .value();
      learner.UpdateFromEvidence(
          estimator.Estimate(session.events, &g.collection),
          g.collection, &learned);
      learned_map[day] += profile_map(topic, &learned);
      mass_on_target[day] += learned.Interest(topic.target_topic);
    }
  }

  const double n = static_cast<double>(g.topics.size());
  std::printf("baseline (no profile) MAP %.4f; declared-profile ceiling "
              "MAP %.4f\n\n",
              baseline_map / n, declared_map / n);
  TextTable table({"sessions observed", "interest on true subject",
                   "profile-reranked MAP"});
  for (size_t day = 0; day <= days; ++day) {
    table.AddRow({StrFormat("%zu", day),
                  FormatMetric(mass_on_target[day] / n),
                  FormatMetric(learned_map[day] / n)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
