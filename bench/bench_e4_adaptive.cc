// E4 — Static profiles, implicit feedback, and their combination.
//
// The paper's third research question: "how both static user profiles and
// implicit relevance feedback should be combined to adapt to the user's
// need". Four systems, same simulated users and topics:
//   baseline        no adaptation
//   profile-only    static-profile re-ranking (registration interests)
//   implicit-only   within-session implicit feedback (Rocchio)
//   combined        profile re-ranking + implicit feedback
//
// Each simulated user has a declared interest in the subject their search
// topics belong to (plus a distractor interest), mirroring the paper's
// "football fan types 'goal'" example: an ambiguous mid-rank query whose
// resolution benefits from knowing the user.
//
// Expected shape (anchored to Agichtein et al. [1]): implicit-only gives
// a large significant MAP gain over baseline; profile-only a smaller
// gain; combined is best.

#include "bench_util.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("E4", "profile vs implicit vs combined adaptation");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend static_backend(*engine);
  const std::vector<SearchTopicId> ids = TopicIds(g.topics);

  // Record one desktop session per topic (the implicit evidence).
  SessionLog log;
  SimulateSessions(g, &static_backend, NoviceUser(), Environment::kDesktop,
                   1, &log, 4200);

  // The per-topic user profile: strong declared interest in the target
  // subject, a weaker distractor interest elsewhere.
  auto profile_for_topic = [&](const SearchTopic& topic) {
    UserProfile profile("user-t" + std::to_string(topic.id));
    profile.SetInterest(topic.target_topic, 1.0);
    profile.SetInterest(
        (topic.target_topic + 3) % static_cast<TopicLabel>(
                                       g.collection.num_topics()),
        0.4);
    return profile;
  };

  struct SystemConfig {
    const char* label;
    bool implicit;
    bool profile;
  };
  const SystemConfig systems[] = {
      {"baseline", false, false},
      {"profile-only", false, true},
      {"implicit-only", true, false},
      {"combined", true, true},
  };

  TextTable table(
      {"system", "MAP", "P@10", "nDCG@10", "dMAP", "p (t-test)"});
  std::vector<double> baseline_ap;
  double baseline_map = 0.0;

  for (const SystemConfig& system : systems) {
    SystemRun run;
    run.system = system.label;
    for (const SearchTopic& topic : g.topics.topics) {
      const UserProfile profile = profile_for_topic(topic);
      AdaptiveOptions options;
      options.use_implicit = system.implicit;
      options.use_profile = system.profile;
      AdaptiveEngine adaptive(*engine, options,
                              system.profile ? &profile : nullptr);
      adaptive.BeginSession();
      if (system.implicit) {
        for (const std::string& session_id : log.SessionIds()) {
          const auto events = log.EventsForSession(session_id);
          if (!events.empty() && events.front().topic == topic.id) {
            for (const InteractionEvent& ev : events) {
              adaptive.ObserveEvent(ev);
            }
          }
        }
      }
      Query query;
      query.text = topic.title;
      run.runs[topic.id] = adaptive.Search(query, 1000);
    }
    const SystemEvaluation eval = EvaluateSystem(run, g.qrels, ids);
    std::string p_value = "-";
    std::string delta = "-";
    if (std::string(system.label) == "baseline") {
      baseline_ap = eval.ApVector();
      baseline_map = eval.mean.ap;
    } else {
      Result<PairedTestResult> test =
          PairedTTest(eval.ApVector(), baseline_ap);
      if (test.ok()) p_value = StrFormat("%.3f", test->p_value);
      delta = FormatRelativeChange(eval.mean.ap, baseline_map);
    }
    table.AddRow({system.label, FormatMetric(eval.mean.ap),
                  FormatMetric(eval.mean.p10),
                  FormatMetric(eval.mean.ndcg10), delta, p_value});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
