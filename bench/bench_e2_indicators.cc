// E2 — Which implicit indicators predict relevance?
//
// The paper's first research question: "Which implicit feedback a user
// provides can be considered as a positive indicator of relevance?"
// We simulate a population of desktop users working on every topic,
// aggregate their interactions per shot, and for each indicator report
// the precision of "indicator fired => shot is relevant", its coverage
// (how many relevant shots it fires on), and the lift over the base rate
// of relevance among displayed shots.
//
// Expected shape (per Hopfgartner & Jose [9] and Claypool et al. [4]):
// click-to-play and near-complete playback are strong positive
// indicators; tooltips/browsing are weak; browsing past a result is
// (weak) negative evidence; explicit judgements are the most precise.

#include <map>

#include "bench_util.h"

namespace ivr {
namespace bench {
namespace {

struct IndicatorStats {
  size_t fired = 0;
  size_t fired_relevant = 0;

  double Precision() const {
    return fired == 0 ? 0.0
                      : static_cast<double>(fired_relevant) /
                            static_cast<double>(fired);
  }
};

void Run() {
  Banner("E2", "implicit indicators of relevance (desktop population)");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend backend(*engine);

  // A mixed population: novices and experts, several sessions per topic.
  SessionLog log;
  SimulateSessions(g, &backend, NoviceUser(), Environment::kDesktop,
                   /*seeds_per_topic=*/4, &log, /*seed_base=*/100);
  SimulateSessions(g, &backend, ExpertUser(), Environment::kDesktop,
                   /*seeds_per_topic=*/4, &log, /*seed_base=*/500);

  // Aggregate per (session, shot) indicator vectors against the truth.
  std::map<std::string, IndicatorStats> stats;
  size_t displayed = 0;
  size_t displayed_relevant = 0;
  for (const std::string& session_id : log.SessionIds()) {
    const std::vector<InteractionEvent> events =
        log.EventsForSession(session_id);
    if (events.empty()) continue;
    const SearchTopicId topic = events.front().topic;
    for (const auto& [shot, ind] :
         AggregateIndicators(events, &g.collection)) {
      const bool relevant = g.qrels.IsRelevant(topic, shot);
      if (ind.displays > 0) {
        ++displayed;
        if (relevant) ++displayed_relevant;
      }
      auto fire = [&](const char* name, bool fired) {
        if (!fired) return;
        IndicatorStats& s = stats[name];
        ++s.fired;
        if (relevant) ++s.fired_relevant;
      };
      fire("click_keyframe", ind.clicks > 0);
      fire("play_started", ind.play_count > 0);
      fire("played>=50%", ind.play_fraction >= 0.5);
      fire("played>=90%", ind.play_fraction >= 0.9);
      fire("seek_slider", ind.seeks > 0);
      fire("highlight_metadata", ind.metadata_highlights > 0);
      fire("tooltip_hover", ind.tooltip_hovers > 0);
      fire("long_dwell>=8s", ind.dwell_ms >= 8000.0);
      fire("used_as_example", ind.used_as_example > 0);
      fire("browsed_past", ind.browsed_past);
      fire("explicit_relevant", ind.explicit_judgment > 0);
      fire("explicit_not_relevant", ind.explicit_judgment < 0);
    }
  }

  const double base_rate =
      displayed == 0 ? 0.0
                     : static_cast<double>(displayed_relevant) /
                           static_cast<double>(displayed);
  std::printf("displayed shot instances: %zu (relevance base rate %.3f)\n\n",
              displayed, base_rate);

  TextTable table({"indicator", "fired", "P(rel|fired)", "lift"});
  for (const auto& [name, s] : stats) {
    const double lift =
        base_rate > 0.0 ? s.Precision() / base_rate : 0.0;
    table.AddRow({name, StrFormat("%zu", s.fired),
                  FormatMetric(s.Precision()), StrFormat("%.2fx", lift)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "note: explicit_not_relevant precision reads as P(rel|fired) — a\n"
      "good negative indicator therefore shows a LOW value here.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
