// A1 (ablation) — Can high-level concept detection bridge the semantic
// gap?
//
// The paper's Section 1/4 position: "the approaches of using visual
// features and automatically detecting high level concepts, as mainly
// studied within TRECVID, turned out to be not efficient enough to
// bridge the semantic gap". We sweep the simulated detector's quality
// (mean confidence on truly-present concepts) and compare concept-only
// search against text search and against text+concept fusion.
//
// Expected shape: at realistic 2008-era detector quality (~0.6-0.75)
// concept-only search loses to plain transcript search; only with
// near-oracle detectors does it win. Fusion helps once detectors are at
// least moderately informative — the "use concepts as one evidence
// stream, not the answer" design choice of the engine.

#include "bench_util.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("A1", "concept-detector quality sweep (semantic-gap ablation)");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  const std::vector<SearchTopicId> ids = TopicIds(g.topics);

  // Text reference.
  auto text_engine = MustBuildEngine(g.collection);
  StaticBackend text_backend(*text_engine);
  const SystemEvaluation text_eval = EvaluateSystem(
      RunAllTopics(&text_backend, g.topics, "text"), g.qrels, ids);

  TextTable table({"detector quality", "concept MAP", "text MAP",
                   "text+concept MAP", "winner"});
  for (double quality : {0.52, 0.56, 0.60, 0.70, 0.85}) {
    EngineOptions options;
    options.use_concepts = true;
    options.detector.mean_positive = quality;
    // 2008-era detectors were noisy; the sweep spans "barely better than
    // chance" to "research-grade oracle".
    options.detector.noise_stddev = 0.3;
    auto engine = MustBuildEngine(g.collection, options);

    SystemRun concept_run;
    concept_run.system = "concepts";
    SystemRun fused_run;
    fused_run.system = "text+concepts";
    for (const SearchTopic& topic : g.topics.topics) {
      Query concept_query;
      concept_query.concepts = {topic.target_topic};
      concept_run.runs[topic.id] = engine->Search(concept_query, 1000);

      Query fused_query;
      fused_query.text = topic.title;
      fused_query.concepts = {topic.target_topic};
      fused_run.runs[topic.id] = engine->Search(fused_query, 1000);
    }
    const SystemEvaluation concept_eval =
        EvaluateSystem(concept_run, g.qrels, ids);
    const SystemEvaluation fused_eval =
        EvaluateSystem(fused_run, g.qrels, ids);
    const char* winner =
        concept_eval.mean.ap > text_eval.mean.ap ? "concepts" : "text";
    table.AddRow({StrFormat("%.2f", quality),
                  FormatMetric(concept_eval.mean.ap),
                  FormatMetric(text_eval.mean.ap),
                  FormatMetric(fused_eval.mean.ap), winner});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
