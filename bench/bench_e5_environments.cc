// E5 — Interaction environments: desktop PC vs interactive TV.
//
// The paper (Section 3) studies the same retrieval backend behind two
// interfaces: a desktop application (keyboard + mouse, rich implicit
// feedback) and an iTV application (remote control: typing is painful,
// paging and the coloured judgement keys are cheap). We run matched
// user populations in both environments and compare the interaction
// profile and what adaptation can extract from it.
//
// Expected shape: desktop sessions issue more and longer text queries and
// emit far more implicit events; TV sessions produce more *explicit*
// judgements; feedback improves retrieval in both environments, more on
// the desktop (richer evidence).

#include "bench_util.h"

namespace ivr {
namespace bench {
namespace {

struct EnvStats {
  size_t sessions = 0;
  size_t queries = 0;       // text queries + query-by-example
  size_t text_queries = 0;  // typed queries only
  double query_chars = 0.0;
  size_t implicit_events = 0;
  size_t explicit_events = 0;
  double session_minutes = 0.0;
  double relevant_found = 0.0;
  double feedback_map = 0.0;   // MAP of title query after session feedback
  double baseline_map = 0.0;   // MAP of title query without feedback
};

bool IsImplicitEvent(EventType type) {
  switch (type) {
    case EventType::kTooltipHover:
    case EventType::kClickKeyframe:
    case EventType::kPlayStart:
    case EventType::kPlayStop:
    case EventType::kSeek:
    case EventType::kHighlightMetadata:
    case EventType::kBrowseNextPage:
    case EventType::kBrowsePrevPage:
      return true;
    default:
      return false;
  }
}

void Run() {
  Banner("E5", "desktop vs iTV interaction environments");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend backend(*engine);

  struct EnvConfig {
    Environment env;
    UserModel user;
  };
  const EnvConfig configs[] = {
      {Environment::kDesktop, NoviceUser()},
      {Environment::kTv, CouchViewerUser()},
  };

  TextTable table({"environment", "sessions", "queries/sess",
                   "query chars", "implicit/sess", "explicit/sess",
                   "minutes/sess", "rel found/sess", "MAP base",
                   "MAP +feedback"});

  for (const EnvConfig& config : configs) {
    EnvStats stats;
    SessionLog log;
    const auto sessions =
        SimulateSessions(g, &backend, config.user, config.env,
                         /*seeds_per_topic=*/3, &log, /*seed_base=*/7000);
    for (const SimulatedSession& session : sessions) {
      ++stats.sessions;
      stats.queries += session.outcome.queries_issued;
      stats.session_minutes +=
          static_cast<double>(session.outcome.session_ms) /
          static_cast<double>(kMillisPerMinute);
      stats.relevant_found +=
          static_cast<double>(session.outcome.truly_relevant_found);
      for (const InteractionEvent& ev : session.events) {
        if (ev.type == EventType::kQuerySubmit) {
          ++stats.text_queries;
          stats.query_chars += static_cast<double>(ev.text.size());
        }
        if (IsImplicitEvent(ev.type)) ++stats.implicit_events;
        if (ev.type == EventType::kMarkRelevant ||
            ev.type == EventType::kMarkNotRelevant) {
          ++stats.explicit_events;
        }
      }
      // Adaptation value of this session's evidence.
      const SearchTopic* topic = g.topics.Find(session.topic);
      AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
      adaptive.BeginSession();
      for (const InteractionEvent& ev : session.events) {
        adaptive.ObserveEvent(ev);
      }
      Query query;
      query.text = topic->title;
      stats.feedback_map += AveragePrecision(adaptive.Search(query, 1000),
                                             g.qrels, topic->id);
      stats.baseline_map += AveragePrecision(engine->Search(query, 1000),
                                             g.qrels, topic->id);
    }

    const double n = static_cast<double>(stats.sessions);
    const double q = static_cast<double>(stats.queries);
    const double tq = static_cast<double>(stats.text_queries);
    table.AddRow({std::string(EnvironmentName(config.env)) + " (" +
                      config.user.name + ")",
                  StrFormat("%zu", stats.sessions),
                  StrFormat("%.2f", q / n),
                  StrFormat("%.1f", tq > 0 ? stats.query_chars / tq : 0.0),
                  StrFormat("%.1f",
                            static_cast<double>(stats.implicit_events) / n),
                  StrFormat("%.1f",
                            static_cast<double>(stats.explicit_events) / n),
                  StrFormat("%.1f", stats.session_minutes / n),
                  StrFormat("%.1f", stats.relevant_found / n),
                  FormatMetric(stats.baseline_map / n),
                  FormatMetric(stats.feedback_map / n)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
