// A5 (ablation) — User effort: does adaptation "reduce the number of
// steps"?
//
// The paper's success criterion for the adaptive model is stated in user
// terms, not rank terms: it should "significantly reduce the number of
// steps the user has to perform before he retrieves satisfying search
// results". We run matched simulated users (same seeds, same topics)
// against the static and the adaptive backend and compare effort
// metrics computed from their interaction logs, plus the explicit /
// implicit / combined evidence ablation of Agichtein et al. [1].
//
// Expected shape: with the adaptive backend users reach their first
// relevant shot in fewer actions, waste fewer playbacks on non-relevant
// shots, and find more relevant shots per minute. For the evidence
// ablation: explicit-only (sparse but precise) < implicit-only (dense)
// < combined.

#include "bench_util.h"
#include "ivr/eval/session_metrics.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("A5", "user effort: static vs adaptive; evidence ablation");
  SetLogLevel(LogLevel::kWarning);

  // Harder, narrower topics than the standard collection: the user's
  // first query is weak, so the sessions where adaptation can save
  // effort actually occur (with easy topics query 1 already satisfies).
  GeneratorOptions collection_options = StandardCollectionOptions();
  collection_options.topic_title_word_offset = 10;
  const GeneratedCollection g = MustGenerate(collection_options);
  auto engine = MustBuildEngine(g.collection);

  // Persistent users who keep searching (so later, adapted queries exist).
  UserModel user = NoviceUser();
  user.satisfaction_target = 40;
  user.max_queries = 4;
  user.explicit_propensity = 0.1;  // occasional explicit marks for part 2

  // --- Part 1: effort, static vs adaptive ---
  TextTable effort_table({"backend", "actions to 1st rel",
                          "sec to 1st rel", "rel played/sess",
                          "wasted plays/sess", "play precision",
                          "rel per minute"});
  for (const bool adaptive : {false, true}) {
    std::vector<SessionEffortMetrics> sessions;
    double precision = 0.0;
    double per_minute = 0.0;
    StaticBackend static_backend(*engine);
    for (const SearchTopic& topic : g.topics.topics) {
      for (uint64_t s = 0; s < 3; ++s) {
        AdaptiveEngine adaptive_backend(*engine, AdaptiveOptions(),
                                        nullptr);
        SearchBackend* backend =
            adaptive ? static_cast<SearchBackend*>(&adaptive_backend)
                     : &static_backend;
        SessionSimulator simulator(g.collection, g.qrels);
        SessionSimulator::RunConfig config;
        config.seed = 8800 + topic.id * 31 + s;
        config.session_id = "a5";
        const SimulatedSession session =
            simulator.Run(backend, topic, user, config, nullptr).value();
        const SessionEffortMetrics m =
            ComputeSessionEffort(session.events, g.qrels, topic.id);
        precision += m.PlayPrecision();
        per_minute += m.RelevantPerMinute();
        sessions.push_back(m);
      }
    }
    const SessionEffortMetrics mean = MeanSessionEffort(sessions);
    const double n = static_cast<double>(sessions.size());
    effort_table.AddRow(
        {adaptive ? "adaptive" : "static",
         StrFormat("%zu", mean.actions_to_first_relevant),
         StrFormat("%.1f",
                   static_cast<double>(mean.time_to_first_relevant_ms) /
                       1000.0),
         StrFormat("%zu", mean.relevant_played),
         StrFormat("%zu", mean.nonrelevant_played),
         FormatMetric(precision / n), StrFormat("%.2f", per_minute / n)});
  }
  std::printf("%s\n", effort_table.ToString().c_str());

  // --- Part 2: which evidence — explicit, implicit, or both? ---
  // Record sessions once, then rerun the final query with an estimator
  // that sees only a subset of the events.
  SessionLog log;
  {
    StaticBackend backend(*engine);
    SimulateSessions(g, &backend, user, Environment::kDesktop, 2, &log,
                     9900);
  }
  auto filter_events = [&](const std::vector<InteractionEvent>& events,
                           bool keep_implicit, bool keep_explicit) {
    std::vector<InteractionEvent> out;
    for (const InteractionEvent& ev : events) {
      const bool is_explicit = ev.type == EventType::kMarkRelevant ||
                               ev.type == EventType::kMarkNotRelevant;
      if ((is_explicit && keep_explicit) ||
          (!is_explicit && keep_implicit)) {
        out.push_back(ev);
      }
    }
    return out;
  };

  const std::vector<SearchTopicId> ids = TopicIds(g.topics);
  TextTable evidence_table({"evidence", "MAP", "dMAP vs none"});
  const SystemEvaluation base = [&] {
    StaticBackend backend(*engine);
    return EvaluateSystem(RunAllTopics(&backend, g.topics, "none"),
                          g.qrels, ids);
  }();
  evidence_table.AddRow({"none", FormatMetric(base.mean.ap), "-"});
  struct EvidenceConfig {
    const char* label;
    bool implicit;
    bool explicit_marks;
  };
  for (const EvidenceConfig& config :
       {EvidenceConfig{"explicit only", false, true},
        EvidenceConfig{"implicit only", true, false},
        EvidenceConfig{"combined", true, true}}) {
    SystemRun run;
    run.system = config.label;
    for (const SearchTopic& topic : g.topics.topics) {
      AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
      adaptive.BeginSession();
      for (const std::string& session_id : log.SessionIds()) {
        const auto events = log.EventsForSession(session_id);
        if (events.empty() || events.front().topic != topic.id) continue;
        for (const InteractionEvent& ev : filter_events(
                 events, config.implicit, config.explicit_marks)) {
          adaptive.ObserveEvent(ev);
        }
      }
      Query query;
      query.text = topic.title;
      run.runs[topic.id] = adaptive.Search(query, 1000);
    }
    const SystemEvaluation eval = EvaluateSystem(run, g.qrels, ids);
    evidence_table.AddRow(
        {config.label, FormatMetric(eval.mean.ap),
         FormatRelativeChange(eval.mean.ap, base.mean.ap)});
  }
  std::printf("%s\n", evidence_table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
