// E9 — Does simulation-based evaluation agree with log replay?
//
// The paper adopts simulated users as a "cheap and repeatable" substitute
// for lab studies (Section 2.2), citing White et al. [22] and its own
// simulation frameworks [9,11]. The methodological check: do conclusions
// drawn from fresh policy simulations agree with conclusions drawn from
// replaying previously recorded logs (the Vallet et al. [21] method)?
//
// Protocol: record a reference population's logs once. Then rank four
// candidate systems (three scorers + the adaptive engine) twice —
// (a) by replaying the recorded logs against each system, and
// (b) by running fresh simulations (different seeds) against each system —
// and compare the two system rankings with Kendall's tau, plus the
// stability of basic interaction statistics across simulation seeds.
//
// Expected shape: absolute MAP values differ between the two
// methodologies, but the system *ranking* agrees (tau near 1), and
// interaction statistics are stable across seed batches.

#include <cmath>
#include <functional>

#include "bench_util.h"
#include "ivr/sim/replayer.h"

namespace ivr {
namespace bench {
namespace {

using BackendFactory = std::function<std::unique_ptr<SearchBackend>()>;

struct Candidate {
  std::string label;
  BackendFactory make;
};

void Run() {
  Banner("E9", "simulation vs log replay as evaluation methodologies");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());

  // Candidate systems under evaluation.
  std::vector<std::unique_ptr<RetrievalEngine>> engines;
  for (const char* scorer : {"bm25", "tfidf", "lm"}) {
    EngineOptions options;
    options.scorer = scorer;
    engines.push_back(MustBuildEngine(g.collection, options));
  }
  std::vector<Candidate> candidates;
  for (auto& engine : engines) {
    RetrievalEngine* e = engine.get();
    candidates.push_back(
        {"static-" + e->options().scorer, [e]() {
           return std::make_unique<StaticBackend>(*e);
         }});
  }
  RetrievalEngine* bm25 = engines[0].get();
  candidates.push_back({"adaptive-bm25", [bm25]() {
                          return std::make_unique<AdaptiveEngine>(
                              *bm25, AdaptiveOptions(), nullptr);
                        }});

  // Reference logs, recorded once against the bm25 baseline.
  SessionLog reference_log;
  {
    StaticBackend recorder(*bm25);
    SimulateSessions(g, &recorder, NoviceUser(), Environment::kDesktop, 4,
                     &reference_log, 31000);
  }

  // Methodology A: replay the recorded logs against each candidate and
  // score the results each logged query would have received.
  auto replay_map = [&](SearchBackend* backend) {
    const LogReplayer replayer(1000);
    const std::vector<ReplayedSession> sessions =
        replayer.ReplayAll(reference_log, backend).value();
    double total = 0.0;
    size_t queries = 0;
    for (const ReplayedSession& session : sessions) {
      for (const ResultList& results : session.per_query_results) {
        total += AveragePrecision(results, g.qrels, session.topic);
        ++queries;
      }
    }
    return queries > 0 ? total / static_cast<double>(queries) : 0.0;
  };

  // Methodology B: fresh simulations (different seed batch) against each
  // candidate; score the final query of each session.
  auto simulate_map = [&](SearchBackend* backend, uint64_t seed_base) {
    const auto sessions =
        SimulateSessions(g, backend, NoviceUser(), Environment::kDesktop,
                         4, nullptr, seed_base);
    double total = 0.0;
    size_t counted = 0;
    for (const SimulatedSession& session : sessions) {
      if (session.outcome.per_query_results.empty()) continue;
      total += AveragePrecision(session.outcome.per_query_results.back(),
                                g.qrels, session.topic);
      ++counted;
    }
    return counted > 0 ? total / static_cast<double>(counted) : 0.0;
  };

  TextTable table({"system", "MAP (replay)", "MAP (simulation)"});
  std::vector<double> replay_scores;
  std::vector<double> sim_scores;
  for (const Candidate& candidate : candidates) {
    auto backend_a = candidate.make();
    const double replay = replay_map(backend_a.get());
    auto backend_b = candidate.make();
    const double sim = simulate_map(backend_b.get(), 77000);
    replay_scores.push_back(replay);
    sim_scores.push_back(sim);
    table.AddRow({candidate.label, FormatMetric(replay),
                  FormatMetric(sim)});
  }
  std::printf("%s\n", table.ToString().c_str());

  const double tau = KendallTau(replay_scores, sim_scores).value();
  // Tau with a tie tolerance: systems whose MAP differs by less than
  // epsilon under a methodology are tied there, and tied pairs cannot be
  // discordant — the fair reading when two scorers are statistically
  // indistinguishable.
  constexpr double kEpsilon = 0.01;
  long long concordant = 0;
  long long discordant = 0;
  for (size_t i = 0; i < replay_scores.size(); ++i) {
    for (size_t j = i + 1; j < replay_scores.size(); ++j) {
      const double dr = replay_scores[i] - replay_scores[j];
      const double ds = sim_scores[i] - sim_scores[j];
      if (std::fabs(dr) < kEpsilon || std::fabs(ds) < kEpsilon) continue;
      if (dr * ds > 0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const long long decided = concordant + discordant;
  std::printf("Kendall tau between system rankings: %.3f raw, "
              "%.3f over the %lld pairs separated by >= %.2f MAP\n\n",
              tau,
              decided > 0 ? static_cast<double>(concordant - discordant) /
                                static_cast<double>(decided)
                          : 0.0,
              decided, kEpsilon);

  // Stability of interaction statistics across simulation seed batches.
  TextTable stability({"seed batch", "queries/sess", "clicks/sess",
                       "plays/sess", "rel found/sess"});
  for (uint64_t batch : {41000u, 42000u, 43000u}) {
    StaticBackend backend(*bm25);
    const auto sessions = SimulateSessions(
        g, &backend, NoviceUser(), Environment::kDesktop, 2, nullptr,
        batch);
    double queries = 0.0;
    double clicks = 0.0;
    double plays = 0.0;
    double found = 0.0;
    for (const SimulatedSession& s : sessions) {
      queries += static_cast<double>(s.outcome.queries_issued);
      clicks += static_cast<double>(s.outcome.clicks);
      plays += static_cast<double>(s.outcome.plays);
      found += static_cast<double>(s.outcome.truly_relevant_found);
    }
    const double n = static_cast<double>(sessions.size());
    stability.AddRow({StrFormat("%llu", static_cast<unsigned long long>(
                                            batch)),
                      StrFormat("%.2f", queries / n),
                      StrFormat("%.2f", clicks / n),
                      StrFormat("%.2f", plays / n),
                      StrFormat("%.2f", found / n)});
  }
  std::printf("%s\n", stability.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
