// A4 (ablation) — Rocchio feedback parameters.
//
// The adaptive engine's query expansion has four knobs: alpha (original
// query), beta (positive centroid), gamma (negative centroid) and the
// expansion-term budget. This ablation justifies the defaults
// (1.0 / 0.75 / 0.15 / 20) by sweeping each around the default with the
// others fixed, using the same recorded sessions as E3.
//
// Expected shape: beta carries essentially all the gain (beta=0 falls
// back to the no-feedback baseline); large gamma hurts (negative
// evidence is noisier than positive); the expansion-term budget has a
// broad plateau. One regime-dependent result worth knowing: with the
// dense, on-topic feedback a simulated session produces, alpha=0 (pure
// feedback query) can even beat the default — with sparse or noisy real
// feedback the original query's anchor (alpha>=1) is what prevents
// topic drift, which is why the default keeps it.

#include "bench_util.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("A4", "Rocchio parameter ablation");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend backend(*engine);
  const std::vector<SearchTopicId> ids = TopicIds(g.topics);

  // Recorded feedback sessions (one per topic).
  SessionLog log;
  SimulateSessions(g, &backend, NoviceUser(), Environment::kDesktop, 1,
                   &log, 6100);

  auto run_with = [&](const RocchioOptions& rocchio) {
    SystemRun run;
    run.system = "rocchio";
    for (const SearchTopic& topic : g.topics.topics) {
      AdaptiveOptions options;
      options.rocchio = rocchio;
      AdaptiveEngine adaptive(*engine, options, nullptr);
      adaptive.BeginSession();
      for (const std::string& session_id : log.SessionIds()) {
        const auto events = log.EventsForSession(session_id);
        if (!events.empty() && events.front().topic == topic.id) {
          for (const InteractionEvent& ev : events) {
            adaptive.ObserveEvent(ev);
          }
        }
      }
      Query query;
      query.text = topic.title;
      run.runs[topic.id] = adaptive.Search(query, 1000);
    }
    return EvaluateSystem(run, g.qrels, ids).mean.ap;
  };

  const RocchioOptions defaults;
  std::printf("defaults: alpha=%.2f beta=%.2f gamma=%.2f terms=%zu -> "
              "MAP %.4f (baseline without feedback: ",
              defaults.alpha, defaults.beta, defaults.gamma,
              defaults.max_expansion_terms, run_with(defaults));
  const SystemEvaluation base = EvaluateSystem(
      RunAllTopics(&backend, g.topics, "base"), g.qrels, ids);
  std::printf("%.4f)\n\n", base.mean.ap);

  TextTable alpha_table({"alpha", "MAP"});
  for (double alpha : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    RocchioOptions options = defaults;
    options.alpha = alpha;
    alpha_table.AddRow({StrFormat("%.2f", alpha),
                        FormatMetric(run_with(options))});
  }
  std::printf("%s\n", alpha_table.ToString().c_str());

  TextTable beta_table({"beta", "MAP"});
  for (double beta : {0.0, 0.25, 0.5, 0.75, 1.0, 2.0}) {
    RocchioOptions options = defaults;
    options.beta = beta;
    beta_table.AddRow({StrFormat("%.2f", beta),
                       FormatMetric(run_with(options))});
  }
  std::printf("%s\n", beta_table.ToString().c_str());

  TextTable gamma_table({"gamma", "MAP"});
  for (double gamma : {0.0, 0.15, 0.5, 1.0, 2.0}) {
    RocchioOptions options = defaults;
    options.gamma = gamma;
    gamma_table.AddRow({StrFormat("%.2f", gamma),
                        FormatMetric(run_with(options))});
  }
  std::printf("%s\n", gamma_table.ToString().c_str());

  TextTable terms_table({"expansion terms", "MAP"});
  for (size_t terms : {0u, 5u, 10u, 20u, 40u, 80u}) {
    RocchioOptions options = defaults;
    options.max_expansion_terms = terms;
    terms_table.AddRow({StrFormat("%zu", terms),
                        FormatMetric(run_with(options))});
  }
  std::printf("%s\n", terms_table.ToString().c_str());
  std::printf("note: expansion terms = 0 means 'no cap', not 'no "
              "expansion'.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
