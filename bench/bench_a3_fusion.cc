// A3 (ablation) — Which fusion operator should combine the evidence
// streams?
//
// The engine's default (weighted linear fusion of min-max-normalised
// scores) is one of several classical choices. We fuse the text and
// visual-example runs per topic with every operator the library ships,
// plus a text-weight sweep for the weighted-linear default — justifying
// the EngineOptions defaults (text_weight 0.75 / visual 0.25).
//
// Expected shape: good fusion operators beat both single modalities
// (CombMNZ and RRF reward cross-modality agreement most; Borda's
// untruncated rank averaging can fall below text alone); the weight
// sweep rises towards text-heavy mixtures and then cliffs at 1.0 where
// the visual evidence is discarded entirely.

#include "bench_util.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("A3", "fusion operator and weight ablation (text + visual)");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  const std::vector<SearchTopicId> ids = TopicIds(g.topics);

  // Per-topic single-modality runs.
  std::map<SearchTopicId, ResultList> text_runs;
  std::map<SearchTopicId, ResultList> visual_runs;
  for (const SearchTopic& topic : g.topics.topics) {
    Query text_query;
    text_query.text = topic.title;
    text_runs[topic.id] = engine->Search(text_query, 1000);
    Query visual_query;
    visual_query.examples = topic.examples;
    visual_runs[topic.id] = engine->Search(visual_query, 1000);
  }

  auto evaluate = [&](const char* label,
                      ResultList (*fuse)(const std::vector<ResultList>&)) {
    SystemRun run;
    run.system = label;
    for (SearchTopicId id : ids) {
      run.runs[id] = fuse({text_runs.at(id), visual_runs.at(id)});
    }
    return EvaluateSystem(run, g.qrels, ids);
  };

  TextTable table({"method", "MAP", "P@10", "nDCG@10"});
  // Single modalities first.
  for (const auto& [label, runs] :
       {std::pair{"text only", &text_runs},
        std::pair{"visual only", &visual_runs}}) {
    SystemRun run;
    run.system = label;
    run.runs = *runs;
    const SystemEvaluation eval = EvaluateSystem(run, g.qrels, ids);
    table.AddRow({label, FormatMetric(eval.mean.ap),
                  FormatMetric(eval.mean.p10),
                  FormatMetric(eval.mean.ndcg10)});
  }
  const SystemEvaluation combsum = evaluate("CombSUM", &CombSum);
  const SystemEvaluation combmnz = evaluate("CombMNZ", &CombMnz);
  const SystemEvaluation borda = evaluate("Borda", &BordaCount);
  SystemRun rrf_run;
  rrf_run.system = "RRF(k=60)";
  for (SearchTopicId id : ids) {
    rrf_run.runs[id] =
        ReciprocalRankFusion({text_runs.at(id), visual_runs.at(id)});
  }
  const SystemEvaluation rrf = EvaluateSystem(rrf_run, g.qrels, ids);
  for (const SystemEvaluation* eval : {&combsum, &combmnz, &rrf, &borda}) {
    table.AddRow({eval->system, FormatMetric(eval->mean.ap),
                  FormatMetric(eval->mean.p10),
                  FormatMetric(eval->mean.ndcg10)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Weighted-linear text-weight sweep (the engine default is 0.75).
  TextTable sweep({"text weight", "MAP"});
  for (double w : {0.0, 0.25, 0.5, 0.625, 0.75, 0.875, 1.0}) {
    SystemRun run;
    run.system = "weighted";
    for (SearchTopicId id : ids) {
      run.runs[id] = WeightedLinear(
          {text_runs.at(id), visual_runs.at(id)}, {w, 1.0 - w});
    }
    const SystemEvaluation eval = EvaluateSystem(run, g.qrels, ids);
    sweep.AddRow({StrFormat("%.3f", w), FormatMetric(eval.mean.ap)});
  }
  std::printf("%s\n", sweep.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
