// E7 — Within-session interest drift and the ostensive model.
//
// Campbell & van Rijsbergen's ostensive model [3], which the paper cites
// as the reason static profiles cannot be enough: "the users' information
// need can change within different retrieval sessions and sometimes even
// within the same session". We script exactly that: a user first engages
// with shots about subject A, then their interest switches to subject B.
// Four systems answer the post-switch query (B's terms):
//   baseline            no feedback at all
//   profile(A)          static profile registered for subject A
//   implicit-uniform    all session feedback, no recency weighting
//   implicit-ostensive  session feedback with exponential recency decay
//
// Expected shape: stale A-evidence drags the uniform model below the
// no-feedback baseline right after the switch; the ostensive model
// forgets A and recovers fastest; the static A-profile is the worst
// match for the new need. The recovery curve shows ostensive dominance
// at every step after the switch.

#include "bench_util.h"

namespace ivr {
namespace bench {
namespace {

// Full positive engagement with one shot at time t (click + full play,
// then a navigation event that bounds the dwell window).
void EngageShot(AdaptiveEngine* adaptive, ShotId shot, TimeMs t) {
  InteractionEvent click;
  click.time = t;
  click.type = EventType::kClickKeyframe;
  click.shot = shot;
  adaptive->ObserveEvent(click);
  InteractionEvent play;
  play.time = t + 1000;
  play.type = EventType::kPlayStop;
  play.shot = shot;
  play.value = 20000.0;
  adaptive->ObserveEvent(play);
  InteractionEvent nav;
  nav.time = t + 2000;
  nav.type = EventType::kBrowseNextPage;
  adaptive->ObserveEvent(nav);
}

void Run() {
  Banner("E7", "interest drift within a session (ostensive model)");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);

  const SearchTopic& topic_a = g.topics.topics[0];
  const SearchTopic& topic_b = g.topics.topics[1];
  const std::vector<ShotId> relevant_a =
      g.qrels.RelevantShots(topic_a.id, 2);
  const std::vector<ShotId> relevant_b =
      g.qrels.RelevantShots(topic_b.id, 2);

  Query probe;  // the post-switch information need: subject B
  probe.text = topic_b.title;

  auto feed_drift_session = [&](AdaptiveEngine* adaptive,
                                size_t b_engagements) {
    adaptive->BeginSession();
    // Phase 1 (minute 0-1): five engagements on subject A.
    for (size_t i = 0; i < 5 && i < relevant_a.size(); ++i) {
      EngageShot(adaptive, relevant_a[i],
                 static_cast<TimeMs>(i) * 12 * kMillisPerSecond);
    }
    // Phase 2 (from minute 8): the interest has switched to subject B.
    for (size_t i = 0; i < b_engagements && i < relevant_b.size(); ++i) {
      EngageShot(adaptive, relevant_b[i],
                 8 * kMillisPerMinute +
                     static_cast<TimeMs>(i) * 12 * kMillisPerSecond);
    }
  };

  AdaptiveOptions uniform_options;
  AdaptiveOptions ostensive_options;
  ostensive_options.use_ostensive = true;
  ostensive_options.ostensive_half_life_ms = 90 * kMillisPerSecond;

  UserProfile profile_a("registered-for-A");
  profile_a.SetInterest(topic_a.target_topic, 1.0);
  AdaptiveOptions profile_options;
  profile_options.use_implicit = false;
  profile_options.use_profile = true;
  profile_options.profile_lambda = 0.5;

  // --- Main comparison, two B-engagements after the switch ---
  TextTable table({"system", "AP (need B)", "vs baseline"});
  const double baseline_ap = AveragePrecision(
      engine->Search(probe, 1000), g.qrels, topic_b.id);
  table.AddRow({"baseline (no feedback)", FormatMetric(baseline_ap), "-"});

  AdaptiveEngine profile_engine(*engine, profile_options, &profile_a);
  const double profile_ap = AveragePrecision(
      profile_engine.Search(probe, 1000), g.qrels, topic_b.id);
  table.AddRow({"static profile (A)", FormatMetric(profile_ap),
                FormatRelativeChange(profile_ap, baseline_ap)});

  AdaptiveEngine uniform_engine(*engine, uniform_options, nullptr);
  feed_drift_session(&uniform_engine, 2);
  const double uniform_ap = AveragePrecision(
      uniform_engine.Search(probe, 1000), g.qrels, topic_b.id);
  table.AddRow({"implicit, uniform", FormatMetric(uniform_ap),
                FormatRelativeChange(uniform_ap, baseline_ap)});

  AdaptiveEngine ostensive_engine(*engine, ostensive_options, nullptr);
  feed_drift_session(&ostensive_engine, 2);
  const double ostensive_ap = AveragePrecision(
      ostensive_engine.Search(probe, 1000), g.qrels, topic_b.id);
  table.AddRow({"implicit, ostensive decay", FormatMetric(ostensive_ap),
                FormatRelativeChange(ostensive_ap, baseline_ap)});
  std::printf("%s\n", table.ToString().c_str());

  // --- Recovery curve: AP on the new need as B-evidence accumulates ---
  TextTable curve({"B engagements", "uniform AP", "ostensive AP"});
  for (size_t n = 0; n <= 5; ++n) {
    AdaptiveEngine u(*engine, uniform_options, nullptr);
    feed_drift_session(&u, n);
    AdaptiveEngine o(*engine, ostensive_options, nullptr);
    feed_drift_session(&o, n);
    curve.AddRow({StrFormat("%zu", n),
                  FormatMetric(AveragePrecision(u.Search(probe, 1000),
                                                g.qrels, topic_b.id)),
                  FormatMetric(AveragePrecision(o.Search(probe, 1000),
                                                g.qrels, topic_b.id))});
  }
  std::printf("%s\n", curve.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
