// E8 — Community-based implicit feedback (the implicit graph of Vallet,
// Hopfgartner & Jose [21]).
//
// Past users' interaction logs are mined into a query/shot graph; new
// users searching the same topics are answered by (a) plain text search,
// (b) the community graph alone, and (c) a fusion of both. The paper
// reports that community implicit feedback improved both retrieval
// precision and how much of the collection users explored.
//
// Expected shape: the graph alone beats text search on precision at the
// top (it encodes what past users actually watched); fusion is at least
// as good and additionally covers relevant shots text search misses
// (higher unique-relevant coverage).

#include <set>

#include "bench_util.h"
#include "ivr/adaptive/implicit_graph.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {
namespace bench {
namespace {

void Run() {
  Banner("E8", "community implicit graph vs text search");
  SetLogLevel(LogLevel::kWarning);

  const GeneratedCollection g = MustGenerate(StandardCollectionOptions());
  auto engine = MustBuildEngine(g.collection);
  StaticBackend backend(*engine);

  // Mine the graph from a population of past users (novices + experts,
  // several sessions per topic).
  const LinearWeighting scheme;
  ImplicitGraph graph(engine->analyzer());
  SessionLog log;
  SimulateSessions(g, &backend, NoviceUser(), Environment::kDesktop, 3,
                   &log, 21000);
  SimulateSessions(g, &backend, ExpertUser(), Environment::kDesktop, 3,
                   &log, 22000);
  for (const std::string& session_id : log.SessionIds()) {
    graph.AddSession(log.EventsForSession(session_id), scheme,
                     &g.collection);
  }
  std::printf("graph: %zu query nodes, %zu shot nodes, %zu edges "
              "(from %zu sessions)\n\n",
              graph.num_query_nodes(), graph.num_shot_nodes(),
              graph.num_edges(), log.SessionIds().size());

  // New users issue the topic titles. Three systems.
  const std::vector<SearchTopicId> ids = TopicIds(g.topics);
  SystemRun text_run;
  text_run.system = "text (bm25)";
  SystemRun graph_run;
  graph_run.system = "community graph";
  SystemRun fused_run;
  fused_run.system = "text + graph (CombSUM)";
  for (const SearchTopic& topic : g.topics.topics) {
    Query query;
    query.text = topic.title;
    const ResultList text = engine->Search(query, 1000);
    const ResultList community = graph.Recommend(topic.title, 1000);
    text_run.runs[topic.id] = text;
    graph_run.runs[topic.id] = community;
    fused_run.runs[topic.id] = CombSum({text, community});
  }

  TextTable table({"system", "MAP", "P@10", "P@20",
                   "unique rel in top-20"});
  for (const SystemRun* run : {&text_run, &graph_run, &fused_run}) {
    const SystemEvaluation eval = EvaluateSystem(*run, g.qrels, ids);
    // Exploration: distinct relevant shots surfaced in the top 20 across
    // all topics (the paper's "explore the collection to a greater
    // extent").
    std::set<ShotId> unique_relevant;
    for (const auto& [topic_id, list] : run->runs) {
      for (size_t i = 0; i < std::min<size_t>(20, list.size()); ++i) {
        if (g.qrels.IsRelevant(topic_id, list.at(i).shot)) {
          unique_relevant.insert(list.at(i).shot);
        }
      }
    }
    table.AddRow({run->system, FormatMetric(eval.mean.ap),
                  FormatMetric(eval.mean.p10), FormatMetric(eval.mean.p20),
                  StrFormat("%zu", unique_relevant.size())});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace ivr

int main() {
  ivr::bench::Run();
  return 0;
}
