#ifndef IVR_BENCH_BENCH_UTIL_H_
#define IVR_BENCH_BENCH_UTIL_H_

// Shared setup code for the experiment binaries (bench_e1..e10). Each
// binary regenerates one table/figure of the reproduction; EXPERIMENTS.md
// records the expected shapes.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/logging.h"
#include "ivr/core/string_util.h"
#include "ivr/feedback/backend.h"
#include "ivr/eval/experiment.h"
#include "ivr/eval/metrics.h"
#include "ivr/eval/significance.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace bench {

/// The standard experimental collection: ~8 topics, 25 broadcasts,
/// ~1200 shots. WER defaults to the realistic 2008-era 30%.
inline GeneratorOptions StandardCollectionOptions(double wer = 0.3,
                                                  uint64_t seed = 2008) {
  GeneratorOptions options;
  options.seed = seed;
  options.num_videos = 25;
  options.stories_per_video_mean = 7.0;
  options.shots_per_story_mean = 6.0;
  options.asr_word_error_rate = wer;
  options.general_word_prob = 0.65;
  options.words_per_shot_mean = 14.0;
  options.num_topics = 10;
  options.topic_word_leak_prob = 0.30;
  // Aspect-style (narrow) topics: the TRECVID difficulty regime.
  options.topic_title_word_offset = 6;
  // Weak low-level visual features (query-by-example below text search,
  // fusion complementary) — the 2008 semantic-gap regime.
  options.keyframe_noise = 0.5;
  options.keyframe_topic_strength = 0.12;
  return options;
}

inline GeneratedCollection MustGenerate(const GeneratorOptions& options) {
  Result<GeneratedCollection> generated = GenerateCollection(options);
  if (!generated.ok()) {
    std::fprintf(stderr, "collection generation failed: %s\n",
                 generated.status().ToString().c_str());
    std::abort();
  }
  return std::move(generated).value();
}

inline std::unique_ptr<RetrievalEngine> MustBuildEngine(
    const VideoCollection& collection,
    EngineOptions options = EngineOptions()) {
  auto engine = RetrievalEngine::Build(collection, std::move(options));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).value();
}

/// Runs every topic's title query through a backend, producing a
/// SystemRun for evaluation.
inline SystemRun RunAllTopics(SearchBackend* backend, const TopicSet& topics,
                              const std::string& name, size_t k = 1000) {
  SystemRun run;
  run.system = name;
  for (const SearchTopic& topic : topics.topics) {
    Query query;
    query.text = topic.title;
    run.runs[topic.id] = backend->Search(query, k);
  }
  return run;
}

inline std::vector<SearchTopicId> TopicIds(const TopicSet& topics) {
  std::vector<SearchTopicId> ids;
  for (const SearchTopic& topic : topics.topics) {
    ids.push_back(topic.id);
  }
  return ids;
}

/// Simulates one session per (topic, seed) pair against `backend`,
/// appending events to `log` and returning the sessions.
inline std::vector<SimulatedSession> SimulateSessions(
    const GeneratedCollection& g, SearchBackend* backend,
    const UserModel& user, Environment env, size_t seeds_per_topic,
    SessionLog* log, uint64_t seed_base = 100) {
  SessionSimulator simulator(g.collection, g.qrels);
  std::vector<SimulatedSession> sessions;
  for (const SearchTopic& topic : g.topics.topics) {
    for (size_t s = 0; s < seeds_per_topic; ++s) {
      SessionSimulator::RunConfig config;
      config.environment = env;
      config.seed = seed_base + topic.id * 131 + s;
      config.session_id = std::string(EnvironmentName(env)) + "-t" +
                          std::to_string(topic.id) + "-s" +
                          std::to_string(s);
      config.user_id = user.name + std::to_string(s);
      Result<SimulatedSession> session =
          simulator.Run(backend, topic, user, config, log);
      if (!session.ok()) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     session.status().ToString().c_str());
        std::abort();
      }
      sessions.push_back(std::move(session).value());
    }
  }
  return sessions;
}

/// Prints a standard experiment banner.
inline void Banner(const char* id, const char* title) {
  std::printf("=== %s: %s ===\n", id, title);
}

}  // namespace bench
}  // namespace ivr

#endif  // IVR_BENCH_BENCH_UTIL_H_
